//! Link-level simulation of bulk traffic on the torus.
//!
//! The analytic bisection bound of the scalability projection says *when*
//! congestion must appear; this module shows *how much*: it schedules a set
//! of flows (source, destination, bytes) over the torus link by link, with
//! every directed channel modelled as a serially-occupied resource, and
//! reports the makespan. Transposes are AAPC patterns, so
//! [`simulate_aapc`] is the headline entry point.
//!
//! The model is deliberately simple — flows are fluid, links serve one flow
//! at a time in round-robin epochs — but it is mechanism, not formula: the
//! same dimension-order routes the real machines used, the same shared
//! channels, and congestion emerges from overlap.

use std::collections::HashMap;

use gasnub_memsim::SimError;

use crate::link::LinkConfig;
use crate::topology::{ChannelFaults, NodeId, Torus3d};

/// One bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Payload bytes.
    pub bytes: u64,
}

/// Result of a bulk-traffic simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSimResult {
    /// Cycles until the last flow completes.
    pub makespan_cycles: f64,
    /// The busiest channel's total occupancy in cycles.
    pub max_channel_cycles: f64,
    /// Number of distinct channels used.
    pub channels_used: usize,
    /// Aggregate delivered bandwidth in bytes/cycle.
    pub delivered_bytes_per_cycle: f64,
}

/// Simulates `flows` over `torus` with per-channel capacity from `link`.
///
/// Every flow's bytes traverse each channel of its dimension-order route.
/// Channels serve at `1 / link.cycles_per_byte` bytes per cycle, shared
/// equally among the flows crossing them; the makespan is computed by
/// iterating max-min fair fluid rates until all flows finish. Hop latency
/// adds once per flow (pipelined wormhole head).
pub fn simulate(torus: &Torus3d, link: &LinkConfig, flows: &[Flow]) -> NetSimResult {
    simulate_with_faults(torus, link, flows, &ChannelFaults::none())
        .expect("a fault-free fabric routes every flow")
}

/// [`simulate`] on a fabric carrying `faults`: flows detour around failed
/// channels (dimension-order fallback routing) and degraded channels serve
/// at their reduced capacity.
///
/// # Errors
///
/// Returns [`SimError::Unroutable`] when the failed channels disconnect a
/// flow's endpoints, and [`SimError::OutOfRange`] for flows naming nodes
/// outside the torus.
pub fn simulate_with_faults(
    torus: &Torus3d,
    link: &LinkConfig,
    flows: &[Flow],
    faults: &ChannelFaults,
) -> Result<NetSimResult, SimError> {
    // Route every flow and index channel membership.
    let mut channel_flows: HashMap<(NodeId, NodeId), Vec<usize>> = HashMap::new();
    let mut routes: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(flows.len());
    for (i, f) in flows.iter().enumerate() {
        let route = torus.route_avoiding(f.from, f.to, faults)?;
        for &ch in &route {
            channel_flows.entry(ch).or_default().push(i);
        }
        routes.push(route);
    }

    let capacity = if link.cycles_per_byte > 0.0 {
        1.0 / link.cycles_per_byte
    } else {
        f64::INFINITY
    };
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes as f64).collect();
    let mut active: Vec<bool> = flows
        .iter()
        .map(|f| f.bytes > 0 && f.from != f.to)
        .collect();
    let mut now = 0.0;

    // Progressive max-min filling: in each epoch, every active flow gets an
    // equal share of its bottleneck channel; run until the first flow
    // finishes, then recompute.
    loop {
        let mut rates = vec![0.0f64; flows.len()];
        let mut any = false;
        for (i, r) in rates.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            any = true;
            // Bottleneck share across this flow's channels.
            let mut rate = f64::INFINITY;
            for ch in &routes[i] {
                let sharers = channel_flows[ch]
                    .iter()
                    .filter(|&&j| active[j])
                    .count()
                    .max(1) as f64;
                let cap = capacity * faults.capacity_factor(ch.0, ch.1);
                rate = rate.min(cap / sharers);
            }
            *r = rate;
        }
        if !any {
            break;
        }
        // Time until the first active flow drains at these rates.
        let mut dt = f64::INFINITY;
        for i in 0..flows.len() {
            if active[i] && rates[i] > 0.0 {
                dt = dt.min(remaining[i] / rates[i]);
            }
        }
        if !dt.is_finite() {
            break;
        }
        now += dt;
        for i in 0..flows.len() {
            if active[i] {
                remaining[i] -= rates[i] * dt;
                if remaining[i] <= 1e-9 {
                    active[i] = false;
                }
            }
        }
    }

    // Channel occupancies (total bytes crossing x cycles/byte, scaled up on
    // degraded channels that serve those bytes more slowly).
    let mut max_channel_cycles = 0.0f64;
    for (ch, members) in &channel_flows {
        let bytes: f64 = members.iter().map(|&i| flows[i].bytes as f64).sum();
        let factor = faults.capacity_factor(ch.0, ch.1).max(f64::MIN_POSITIVE);
        max_channel_cycles = max_channel_cycles.max(bytes * link.cycles_per_byte / factor);
    }

    // Head latency of the longest route that actually carried data.
    let max_hops = routes
        .iter()
        .enumerate()
        .filter(|&(i, _)| flows[i].bytes > 0 && flows[i].from != flows[i].to)
        .map(|(_, r)| r.len())
        .max()
        .unwrap_or(0);
    let makespan = now + link.per_hop_cycles * max_hops as f64;
    let total_bytes: f64 = flows
        .iter()
        .filter(|f| f.from != f.to)
        .map(|f| f.bytes as f64)
        .sum();
    Ok(NetSimResult {
        makespan_cycles: makespan,
        max_channel_cycles,
        channels_used: channel_flows.len(),
        delivered_bytes_per_cycle: if makespan > 0.0 {
            total_bytes / makespan
        } else {
            0.0
        },
    })
}

/// Simulates the AAPC pattern of a transpose: every node sends
/// `bytes_per_pair` to every other node.
pub fn simulate_aapc(torus: &Torus3d, link: &LinkConfig, bytes_per_pair: u64) -> NetSimResult {
    let n = torus.nodes();
    let mut flows = Vec::with_capacity((n * (n - 1)) as usize);
    for from in 0..n {
        for to in 0..n {
            if from != to {
                flows.push(Flow {
                    from: NodeId(from),
                    to: NodeId(to),
                    bytes: bytes_per_pair,
                });
            }
        }
    }
    simulate(torus, link, &flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkConfig {
        LinkConfig {
            cycles_per_byte: 0.5,
            per_hop_cycles: 4.0,
        }
    }

    #[test]
    fn single_flow_runs_at_link_rate() {
        let torus = Torus3d::new([4, 1, 1]).unwrap();
        let flows = [Flow {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 1000,
        }];
        let r = simulate(&torus, &link(), &flows);
        // 1000 bytes at 2 bytes/cycle... capacity = 1/0.5 = 2? No: 0.5
        // cycles/byte -> 2 bytes/cycle is wrong; capacity = 1/0.5 = 2.
        assert!(
            (r.makespan_cycles - (500.0 + 4.0)).abs() < 1e-6,
            "got {}",
            r.makespan_cycles
        );
        assert_eq!(r.channels_used, 1);
    }

    #[test]
    fn two_flows_sharing_a_channel_halve_their_rate() {
        let torus = Torus3d::new([4, 1, 1]).unwrap();
        // Both flows cross channel 1->2.
        let flows = [
            Flow {
                from: NodeId(0),
                to: NodeId(2),
                bytes: 1000,
            },
            Flow {
                from: NodeId(1),
                to: NodeId(2),
                bytes: 1000,
            },
        ];
        let shared = simulate(&torus, &link(), &flows);
        let alone = simulate(&torus, &link(), &flows[..1]);
        assert!(
            shared.makespan_cycles > 1.5 * alone.makespan_cycles,
            "sharing must slow completion: {} vs {}",
            shared.makespan_cycles,
            alone.makespan_cycles
        );
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let torus = Torus3d::new([4, 4, 1]).unwrap();
        let a = [Flow {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 4000,
        }];
        let both = [
            Flow {
                from: NodeId(0),
                to: NodeId(1),
                bytes: 4000,
            },
            // A disjoint link on the other side of the torus.
            Flow {
                from: NodeId(10),
                to: NodeId(11),
                bytes: 4000,
            },
        ];
        let ra = simulate(&torus, &link(), &a);
        let rb = simulate(&torus, &link(), &both);
        assert!((ra.makespan_cycles - rb.makespan_cycles).abs() < 1e-6);
    }

    #[test]
    fn self_flows_and_empty_flows_are_ignored() {
        let torus = Torus3d::new([2, 2, 1]).unwrap();
        let flows = [
            Flow {
                from: NodeId(0),
                to: NodeId(0),
                bytes: 1 << 20,
            },
            Flow {
                from: NodeId(0),
                to: NodeId(1),
                bytes: 0,
            },
        ];
        let r = simulate(&torus, &link(), &flows);
        assert_eq!(r.makespan_cycles, 0.0 + 0.0);
        assert_eq!(r.delivered_bytes_per_cycle, 0.0);
    }

    #[test]
    fn aapc_congestion_tracks_the_analytic_bound() {
        // The simulated AAPC makespan must land between the bisection lower
        // bound and a small multiple of it.
        let torus = Torus3d::new([4, 4, 4]).unwrap();
        let l = link();
        let bytes = 4096u64;
        let r = simulate_aapc(&torus, &l, bytes);
        let n = torus.nodes() as f64;
        // Lower bound: one-direction traffic crossing the bisection over the
        // directed channels crossing it (one per undirected link).
        let cross_bytes = (n / 2.0) * (n / 2.0) * bytes as f64;
        let lower = cross_bytes * l.cycles_per_byte / torus.bisection_links() as f64;
        assert!(
            r.makespan_cycles >= lower * 0.9,
            "makespan {} below the bisection bound {lower}",
            r.makespan_cycles
        );
        assert!(
            r.makespan_cycles <= lower * 8.0,
            "makespan {} unreasonably above the bound {lower}",
            r.makespan_cycles
        );
    }

    #[test]
    fn degraded_channel_slows_the_flow_through_it() {
        let torus = Torus3d::new([4, 1, 1]).unwrap();
        let flows = [Flow {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 1000,
        }];
        let mut faults = ChannelFaults::none();
        faults.degrade_channel(NodeId(0), NodeId(1), 0.5).unwrap();
        let healthy = simulate(&torus, &link(), &flows);
        let degraded = simulate_with_faults(&torus, &link(), &flows, &faults).unwrap();
        assert!(
            degraded.makespan_cycles > 1.5 * healthy.makespan_cycles,
            "half capacity must roughly double the drain: {} vs {}",
            degraded.makespan_cycles,
            healthy.makespan_cycles
        );
    }

    #[test]
    fn failed_channel_forces_a_longer_detour() {
        let torus = Torus3d::new([4, 4, 1]).unwrap();
        let flows = [Flow {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 1000,
        }];
        let mut faults = ChannelFaults::none();
        faults.fail_channel(NodeId(0), NodeId(1));
        let healthy = simulate(&torus, &link(), &flows);
        let rerouted = simulate_with_faults(&torus, &link(), &flows, &faults).unwrap();
        assert!(
            rerouted.makespan_cycles > healthy.makespan_cycles,
            "a detour cannot be faster: {} vs {}",
            rerouted.makespan_cycles,
            healthy.makespan_cycles
        );
    }

    #[test]
    fn disconnected_flow_is_an_error() {
        let torus = Torus3d::new([2, 1, 1]).unwrap();
        let flows = [Flow {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 8,
        }];
        let mut faults = ChannelFaults::none();
        faults.fail_channel(NodeId(0), NodeId(1));
        assert!(simulate_with_faults(&torus, &link(), &flows, &faults).is_err());
    }

    #[test]
    fn fault_simulation_is_deterministic() {
        let torus = Torus3d::new([4, 4, 2]).unwrap();
        let mut faults = ChannelFaults::none();
        faults.fail_channel(NodeId(0), NodeId(1));
        faults.degrade_channel(NodeId(1), NodeId(2), 0.4).unwrap();
        let flows: Vec<Flow> = (0..16)
            .map(|i| Flow {
                from: NodeId(i),
                to: NodeId((i * 7 + 3) % 32),
                bytes: 4096,
            })
            .collect();
        let a = simulate_with_faults(&torus, &link(), &flows, &faults).unwrap();
        let b = simulate_with_faults(&torus, &link(), &flows, &faults).unwrap();
        assert_eq!(a, b, "same faults must give bit-identical results");
    }

    #[test]
    fn bigger_tori_deliver_more_aggregate_bandwidth() {
        let l = link();
        let small = simulate_aapc(&Torus3d::new([2, 2, 2]).unwrap(), &l, 4096);
        let large = simulate_aapc(&Torus3d::new([4, 4, 4]).unwrap(), &l, 4096);
        assert!(
            large.delivered_bytes_per_cycle > small.delivered_bytes_per_cycle,
            "{} vs {}",
            large.delivered_bytes_per_cycle,
            small.delivered_bytes_per_cycle
        );
    }
}
