//! Network interface models.
//!
//! * [`T3dNi`] — the Cray T3D's ECL fetch/deposit circuitry: "Remote stores
//!   are directly captured from the write back queues, while remote loads
//!   can be performed in a transparent blocking manner at minimal speed, or
//!   somewhat faster through an external FIFO pre-fetch queue located in the
//!   support circuitry" (§3.2).
//! * [`ERegisters`] — the Cray T3E's E-registers: "Remote stores and remote
//!   loads are performed through a set of external E-registers located in
//!   the support circuitry around the DEC Alpha processor" (§3.3).
//!
//! Both are *pipelines with a bounded number of in-flight slots*: a word
//! operation occupies one slot for the full network round trip (or one-way
//! delivery), and the issuing processor stalls only when every slot is in
//! flight. A blocking T3D remote load is the degenerate single-slot case.

use gasnub_memsim::rng::Rng;
use gasnub_memsim::ConfigError;
use gasnub_trace::CounterSet;

use crate::message::MessageCostModel;

/// Configuration of the message-loss fault model an NI can carry.
///
/// When a packet (or word operation) is lost, the sender notices after
/// `timeout_cycles`, retransmits, and doubles the wait on each further loss
/// (exponential backoff: `timeout * backoff_multiplier^attempt`). Losses are
/// decided by a deterministic per-operation hash of `(seed, operation
/// index, attempt)`, so the same configuration always produces the same
/// cycle counts.
#[derive(Debug, Clone, PartialEq)]
pub struct NiLossConfig {
    /// Probability an individual transmission attempt is lost, in `[0, 1)`.
    pub loss_probability: f64,
    /// Cycles before a lost transmission is detected and retried.
    pub timeout_cycles: f64,
    /// Multiplier applied to the timeout on each successive retry (≥ 1).
    pub backoff_multiplier: f64,
    /// Retries after the first attempt before the NI gives up and charges
    /// the final timeout anyway (the operation is then counted as dropped).
    pub max_retries: u32,
    /// Seed of the deterministic loss stream.
    pub seed: u64,
}

impl NiLossConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a probability outside `[0, 1)`, a
    /// negative timeout, or a backoff multiplier below 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = "NI loss model";
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err(ConfigError::new(c, "loss probability must be in [0, 1)"));
        }
        if self.timeout_cycles < 0.0 || self.timeout_cycles.is_nan() {
            return Err(ConfigError::new(c, "timeout must be non-negative"));
        }
        if self.backoff_multiplier < 1.0 || self.backoff_multiplier.is_nan() {
            return Err(ConfigError::new(c, "backoff multiplier must be at least 1"));
        }
        Ok(())
    }
}

/// Runtime state of the message-loss model: a deterministic loss stream plus
/// retry statistics.
#[derive(Debug, Clone)]
pub struct NiLossModel {
    config: NiLossConfig,
    operations: u64,
    retries: u64,
    dropped: u64,
}

impl NiLossModel {
    /// Builds the model from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`NiLossConfig::validate`] errors.
    pub fn new(config: NiLossConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(NiLossModel {
            config,
            operations: 0,
            retries: 0,
            dropped: 0,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &NiLossConfig {
        &self.config
    }

    /// Retransmissions charged so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Operations abandoned after exhausting every retry.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Resets the loss stream and statistics.
    pub fn reset(&mut self) {
        self.operations = 0;
        self.retries = 0;
        self.dropped = 0;
    }

    /// Charges the loss/retry penalty of the next operation: 0 when the
    /// first attempt delivers, otherwise the sum of timeouts with
    /// exponential backoff until an attempt delivers (or retries run out).
    pub fn delivery_penalty(&mut self) -> f64 {
        let op = self.operations;
        self.operations += 1;
        if self.config.loss_probability == 0.0 {
            return 0.0;
        }
        let mut penalty = 0.0;
        let mut timeout = self.config.timeout_cycles;
        for attempt in 0..=self.config.max_retries {
            // One independent, reproducible draw per (operation, attempt).
            let mut rng = Rng::new(self.config.seed ^ (op << 8) ^ attempt as u64);
            if !rng.gen_bool(self.config.loss_probability) {
                return penalty;
            }
            penalty += timeout;
            timeout *= self.config.backoff_multiplier;
            if attempt < self.config.max_retries {
                self.retries += 1;
            }
        }
        self.dropped += 1;
        penalty
    }
}

/// A bounded set of in-flight transfer slots with a fixed per-operation
/// latency — the shared skeleton of the prefetch FIFO and the E-registers.
#[derive(Debug, Clone)]
struct SlotPipeline {
    slots: Vec<f64>,
    next: usize,
    latency: f64,
}

impl SlotPipeline {
    fn new(depth: usize, latency: f64) -> Self {
        SlotPipeline {
            slots: vec![f64::NEG_INFINITY; depth.max(1)],
            next: 0,
            latency,
        }
    }

    /// Issues one operation at `now`; returns the stall the issuer observes
    /// (zero when a slot is free).
    fn issue(&mut self, now: f64) -> f64 {
        let idx = self.next;
        self.next = (self.next + 1) % self.slots.len();
        let stall = (self.slots[idx] - now).max(0.0);
        self.slots[idx] = now + stall + self.latency;
        stall
    }

    fn reset(&mut self) {
        for s in &mut self.slots {
            *s = f64::NEG_INFINITY;
        }
        self.next = 0;
    }
}

/// Static description of the T3D network interface.
#[derive(Debug, Clone, PartialEq)]
pub struct T3dNiConfig {
    /// Packet injection cost model (per packet / per byte / partner switch).
    pub message: MessageCostModel,
    /// Network round-trip latency of a remote load, in CPU cycles.
    pub remote_load_round_trip_cycles: f64,
    /// Depth of the external FIFO pre-fetch queue. 1 models the
    /// "transparent blocking" mode.
    pub prefetch_fifo_depth: usize,
    /// Whether this NI is shared by the two PEs of a T3D node pair
    /// (footnote 1). The machine layer halves effective injection bandwidth
    /// when both PEs communicate simultaneously.
    pub shared_by_node_pair: bool,
}

impl T3dNiConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates message-model validation and rejects a zero-depth FIFO or
    /// negative round trip.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.message.validate()?;
        if self.prefetch_fifo_depth == 0 {
            return Err(ConfigError::new(
                "T3D NI",
                "prefetch FIFO depth must be at least 1",
            ));
        }
        if self.remote_load_round_trip_cycles < 0.0 {
            return Err(ConfigError::new(
                "T3D NI",
                "round trip must be non-negative",
            ));
        }
        Ok(())
    }
}

/// Runtime state of the T3D network interface.
#[derive(Debug, Clone)]
pub struct T3dNi {
    config: T3dNiConfig,
    fetch_pipeline: SlotPipeline,
    last_partner: Option<u32>,
    packets: u64,
    fetched_words: u64,
    loss: Option<NiLossModel>,
}

impl T3dNi {
    /// Builds a T3D NI from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`T3dNiConfig::validate`] errors.
    pub fn new(config: T3dNiConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let fetch_pipeline = SlotPipeline::new(
            config.prefetch_fifo_depth,
            config.remote_load_round_trip_cycles,
        );
        Ok(T3dNi {
            config,
            fetch_pipeline,
            last_partner: None,
            packets: 0,
            fetched_words: 0,
            loss: None,
        })
    }

    /// Attaches (or removes) a message-loss fault model. Every subsequent
    /// packet injection and word fetch pays its deterministic retry penalty.
    pub fn set_loss_model(&mut self, loss: Option<NiLossModel>) {
        self.loss = loss;
    }

    /// The attached loss model, if any.
    pub fn loss_model(&self) -> Option<&NiLossModel> {
        self.loss.as_ref()
    }

    /// The configuration this NI was built from.
    pub fn config(&self) -> &T3dNiConfig {
        &self.config
    }

    /// Packets injected so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Remote words fetched so far.
    pub fn fetched_words(&self) -> u64 {
        self.fetched_words
    }

    /// Resets all state and statistics.
    pub fn reset(&mut self) {
        self.fetch_pipeline.reset();
        self.last_partner = None;
        self.packets = 0;
        self.fetched_words = 0;
        if let Some(loss) = &mut self.loss {
            loss.reset();
        }
    }

    /// Injects one deposit packet of `bytes` towards `partner`, returning
    /// the injection cycles (partner switches pay extra; an attached loss
    /// model adds its retry penalty).
    pub fn deposit_packet(&mut self, bytes: u64, partner: u32) -> f64 {
        self.packets += 1;
        let switched = self.last_partner.is_some() && self.last_partner != Some(partner);
        self.last_partner = Some(partner);
        let penalty = self
            .loss
            .as_mut()
            .map_or(0.0, NiLossModel::delivery_penalty);
        self.config.message.message_cycles(bytes, switched) + penalty
    }

    /// Exports NI statistics into `out`, including retry/drop counts of an
    /// attached loss model.
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("ni_packets", self.packets);
        out.add("ni_fetched_words", self.fetched_words);
        if let Some(loss) = &self.loss {
            out.add("ni_retries", loss.retries());
            out.add("ni_dropped", loss.dropped());
        }
    }

    /// Issues one remote load word through the pre-fetch FIFO at `now`,
    /// returning the cycles the processor observes. With depth 1 this is the
    /// blocking mode (full round trip per word); deeper FIFOs pipeline.
    pub fn fetch_word(&mut self, now: f64) -> f64 {
        self.fetched_words += 1;
        let stall = self.fetch_pipeline.issue(now);
        let penalty = self
            .loss
            .as_mut()
            .map_or(0.0, NiLossModel::delivery_penalty);
        // Issue cost of touching the FIFO, plus any pipeline stall.
        self.config.message.per_message_cycles + stall + penalty
    }
}

/// Static description of the T3E E-register file.
#[derive(Debug, Clone, PartialEq)]
pub struct ERegistersConfig {
    /// Number of E-registers (512 on the T3E).
    pub count: usize,
    /// Cycles to issue one word-sized put/get through an E-register in a
    /// tuned shmem loop.
    pub word_issue_cycles: f64,
    /// Fixed software overhead per `shmem_iput`/`shmem_iget` call.
    pub call_setup_cycles: f64,
    /// Network round trip one E-register stays occupied per operation.
    pub round_trip_cycles: f64,
}

impl ERegistersConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a zero register count or negative costs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.count == 0 {
            return Err(ConfigError::new(
                "E-registers",
                "register count must be at least 1",
            ));
        }
        if self.word_issue_cycles < 0.0
            || self.call_setup_cycles < 0.0
            || self.round_trip_cycles < 0.0
        {
            return Err(ConfigError::new(
                "E-registers",
                "cycle costs must be non-negative",
            ));
        }
        Ok(())
    }
}

/// Runtime state of the E-register file.
#[derive(Debug, Clone)]
pub struct ERegisters {
    config: ERegistersConfig,
    pipeline: SlotPipeline,
    words: u64,
    calls: u64,
    loss: Option<NiLossModel>,
}

impl ERegisters {
    /// Builds an E-register file from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ERegistersConfig::validate`] errors.
    pub fn new(config: ERegistersConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let pipeline = SlotPipeline::new(config.count, config.round_trip_cycles);
        Ok(ERegisters {
            config,
            pipeline,
            words: 0,
            calls: 0,
            loss: None,
        })
    }

    /// Attaches (or removes) a message-loss fault model. Every subsequent
    /// word transfer pays its deterministic retry penalty.
    pub fn set_loss_model(&mut self, loss: Option<NiLossModel>) {
        self.loss = loss;
    }

    /// The attached loss model, if any.
    pub fn loss_model(&self) -> Option<&NiLossModel> {
        self.loss.as_ref()
    }

    /// The configuration this file was built from.
    pub fn config(&self) -> &ERegistersConfig {
        &self.config
    }

    /// Words transferred so far.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// shmem calls started so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Resets all state and statistics.
    pub fn reset(&mut self) {
        self.pipeline.reset();
        self.words = 0;
        self.calls = 0;
        if let Some(loss) = &mut self.loss {
            loss.reset();
        }
    }

    /// Exports E-register statistics into `out`, including retry/drop counts
    /// of an attached loss model.
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("ereg_words", self.words);
        out.add("ereg_calls", self.calls);
        if let Some(loss) = &self.loss {
            out.add("ni_retries", loss.retries());
            out.add("ni_dropped", loss.dropped());
        }
    }

    /// Charges the fixed software overhead of starting one shmem call.
    pub fn begin_call(&mut self) -> f64 {
        self.calls += 1;
        self.config.call_setup_cycles
    }

    /// Transfers one word (put or get are symmetric through E-registers) at
    /// `now`, returning the cycles the processor observes (an attached loss
    /// model adds its retry penalty).
    pub fn transfer_word(&mut self, now: f64) -> f64 {
        self.words += 1;
        let stall = self.pipeline.issue(now);
        let penalty = self
            .loss
            .as_mut()
            .map_or(0.0, NiLossModel::delivery_penalty);
        self.config.word_issue_cycles + stall + penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3d_cfg(depth: usize) -> T3dNiConfig {
        T3dNiConfig {
            message: MessageCostModel {
                per_message_cycles: 12.0,
                per_byte_cycles: 0.5,
                partner_switch_cycles: 80.0,
            },
            remote_load_round_trip_cycles: 300.0,
            prefetch_fifo_depth: depth,
            shared_by_node_pair: true,
        }
    }

    fn ereg_cfg() -> ERegistersConfig {
        ERegistersConfig {
            count: 512,
            word_issue_cycles: 6.0,
            call_setup_cycles: 200.0,
            round_trip_cycles: 240.0,
        }
    }

    #[test]
    fn configs_validate() {
        assert!(t3d_cfg(8).validate().is_ok());
        assert!(t3d_cfg(0).validate().is_err());
        assert!(ereg_cfg().validate().is_ok());
        let mut c = ereg_cfg();
        c.count = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn deposit_partner_switch_costs_extra() {
        let mut ni = T3dNi::new(t3d_cfg(8)).unwrap();
        let first = ni.deposit_packet(32, 2);
        let same = ni.deposit_packet(32, 2);
        let switched = ni.deposit_packet(32, 3);
        assert_eq!(first, same, "first packet sets the partner without penalty");
        assert_eq!(switched - same, 80.0);
        assert_eq!(ni.packets(), 3);
    }

    #[test]
    fn blocking_fetch_pays_full_round_trip() {
        let mut ni = T3dNi::new(t3d_cfg(1)).unwrap();
        let mut now = 0.0;
        let mut costs = Vec::new();
        for _ in 0..4 {
            let c = ni.fetch_word(now);
            now += c;
            costs.push(c);
        }
        // After the first issue, every word waits a full round trip.
        assert!(costs[1] >= 300.0, "blocking mode must serialize: {costs:?}");
    }

    #[test]
    fn prefetch_fifo_pipelines_fetches() {
        let run = |depth: usize| {
            let mut ni = T3dNi::new(t3d_cfg(depth)).unwrap();
            let mut now = 0.0;
            for _ in 0..64 {
                now += ni.fetch_word(now);
            }
            now
        };
        let blocking = run(1);
        let pipelined = run(8);
        assert!(
            pipelined * 4.0 < blocking,
            "an 8-deep FIFO must be far faster than blocking: {pipelined} vs {blocking}"
        );
    }

    #[test]
    fn eregisters_are_issue_bound_in_steady_state() {
        let mut er = ERegisters::new(ereg_cfg()).unwrap();
        let mut now = 0.0;
        for _ in 0..2048 {
            now += er.transfer_word(now);
        }
        let per_word = now / 2048.0;
        // 512 slots, 240-cycle round trip: slot recycling needs 240/512 < 1
        // cycle per word, so issue (6 cycles) dominates.
        assert!((per_word - 6.0).abs() < 0.5, "per-word cost {per_word}");
    }

    #[test]
    fn tiny_eregister_file_throttles() {
        let mut cfg = ereg_cfg();
        cfg.count = 2;
        let mut er = ERegisters::new(cfg).unwrap();
        let mut now = 0.0;
        for _ in 0..64 {
            now += er.transfer_word(now);
        }
        let per_word = now / 64.0;
        assert!(
            per_word > 100.0,
            "2 registers at 240-cycle RT must bottleneck: {per_word}"
        );
    }

    #[test]
    fn call_setup_accrues_per_call() {
        let mut er = ERegisters::new(ereg_cfg()).unwrap();
        assert_eq!(er.begin_call(), 200.0);
        assert_eq!(er.begin_call(), 200.0);
        assert_eq!(er.calls(), 2);
    }

    fn loss_cfg(p: f64) -> NiLossConfig {
        NiLossConfig {
            loss_probability: p,
            timeout_cycles: 500.0,
            backoff_multiplier: 2.0,
            max_retries: 4,
            seed: 0xFA17,
        }
    }

    #[test]
    fn loss_config_validates() {
        assert!(loss_cfg(0.1).validate().is_ok());
        assert!(loss_cfg(1.0).validate().is_err());
        assert!(loss_cfg(-0.1).validate().is_err());
        let mut c = loss_cfg(0.1);
        c.backoff_multiplier = 0.5;
        assert!(c.validate().is_err());
        let mut c = loss_cfg(0.1);
        c.timeout_cycles = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_loss_charges_nothing() {
        let mut model = NiLossModel::new(loss_cfg(0.0)).unwrap();
        for _ in 0..1000 {
            assert_eq!(model.delivery_penalty(), 0.0);
        }
        assert_eq!(model.retries(), 0);
        assert_eq!(model.dropped(), 0);
    }

    #[test]
    fn loss_model_is_deterministic() {
        let run = || {
            let mut model = NiLossModel::new(loss_cfg(0.2)).unwrap();
            (0..2000)
                .map(|_| model.delivery_penalty())
                .collect::<Vec<f64>>()
        };
        assert_eq!(
            run(),
            run(),
            "same seed must give an identical penalty stream"
        );
    }

    #[test]
    fn penalties_use_exponential_backoff() {
        let mut model = NiLossModel::new(loss_cfg(0.3)).unwrap();
        let mut penalties: Vec<f64> = (0..5000).map(|_| model.delivery_penalty()).collect();
        penalties.retain(|&p| p > 0.0);
        assert!(!penalties.is_empty(), "30% loss must produce some retries");
        // Every non-zero penalty is a partial sum of 500 * 2^k.
        for &p in &penalties {
            let mut sum = 0.0;
            let mut t = 500.0;
            let mut matched = false;
            for _ in 0..=4 {
                sum += t;
                t *= 2.0;
                if (p - sum).abs() < 1e-9 {
                    matched = true;
                    break;
                }
            }
            assert!(matched, "penalty {p} is not a backoff partial sum");
        }
        assert!(model.retries() > 0);
    }

    #[test]
    fn lossy_ni_is_slower_and_reset_restores_the_stream() {
        let mut clean = T3dNi::new(t3d_cfg(8)).unwrap();
        let mut lossy = T3dNi::new(t3d_cfg(8)).unwrap();
        lossy.set_loss_model(Some(NiLossModel::new(loss_cfg(0.2)).unwrap()));
        let run = |ni: &mut T3dNi| {
            let mut now = 0.0;
            for _ in 0..256 {
                now += ni.fetch_word(now);
            }
            now
        };
        let clean_cycles = run(&mut clean);
        let lossy_cycles = run(&mut lossy);
        assert!(
            lossy_cycles > clean_cycles,
            "{lossy_cycles} vs {clean_cycles}"
        );
        lossy.reset();
        assert_eq!(
            run(&mut lossy),
            lossy_cycles,
            "reset must restore the loss stream"
        );
    }

    #[test]
    fn lossy_eregisters_pay_retry_penalties() {
        let mut er = ERegisters::new(ereg_cfg()).unwrap();
        er.set_loss_model(Some(NiLossModel::new(loss_cfg(0.3)).unwrap()));
        let mut now = 0.0;
        for _ in 0..512 {
            now += er.transfer_word(now);
        }
        let clean_estimate = 512.0 * 6.0;
        assert!(
            now > clean_estimate * 1.5,
            "losses must hurt: {now} vs {clean_estimate}"
        );
        assert!(er.loss_model().unwrap().retries() > 0);
    }

    #[test]
    fn reset_clears_pipelines() {
        let mut ni = T3dNi::new(t3d_cfg(1)).unwrap();
        let mut now = 0.0;
        for _ in 0..4 {
            now += ni.fetch_word(now);
        }
        ni.reset();
        assert_eq!(ni.fetched_words(), 0);
        let fresh = ni.fetch_word(0.0);
        assert!(fresh < 300.0, "after reset the pipeline must be empty");
    }
}
