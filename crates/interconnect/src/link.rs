//! Point-to-point torus link occupancy model.
//!
//! A link delivers payload at a fixed byte rate and adds a small per-hop
//! latency. Occupancy is tracked with a busy-until window (like DRAM banks)
//! so that two PEs sharing one network access — the T3D node-pair
//! arrangement of footnote 1 — throttle each other: "the effective link
//! speed seen by each of the two processors falls back to 70 MByte/s".

use gasnub_memsim::ConfigError;
use gasnub_trace::CounterSet;

/// Static description of a link (all costs in *CPU* cycles of the machine
/// under test, so they compose directly with the memory model).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Payload cycles per byte once a transfer streams.
    pub cycles_per_byte: f64,
    /// Latency added per network hop.
    pub per_hop_cycles: f64,
}

impl LinkConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any cost is negative.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cycles_per_byte < 0.0 || self.per_hop_cycles < 0.0 {
            return Err(ConfigError::new("link", "cycle costs must be non-negative"));
        }
        Ok(())
    }

    /// Pure transmission cycles for `bytes` over `hops` hops (pipelined:
    /// hop latency is paid once, payload streams behind the head).
    pub fn transfer_cycles(&self, bytes: u64, hops: u32) -> f64 {
        self.per_hop_cycles * hops as f64 + self.cycles_per_byte * bytes as f64
    }

    /// Link bandwidth in MB/s at a given CPU clock.
    pub fn bandwidth_mb_s(&self, clock_mhz: f64) -> f64 {
        if self.cycles_per_byte <= 0.0 {
            f64::INFINITY
        } else {
            clock_mhz / self.cycles_per_byte
        }
    }
}

/// Runtime occupancy state of one (possibly shared) link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    busy_until: f64,
    stall_total: f64,
    transfers: u64,
}

impl Link {
    /// Builds a link from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`LinkConfig::validate`] errors.
    pub fn new(config: LinkConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Link {
            config,
            busy_until: 0.0,
            stall_total: 0.0,
            transfers: 0,
        })
    }

    /// The configuration this link was built from.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Total cycles callers spent waiting for the link.
    pub fn total_stall_cycles(&self) -> f64 {
        self.stall_total
    }

    /// Number of transfers sent.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Resets occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
        self.stall_total = 0.0;
        self.transfers = 0;
    }

    /// Exports link statistics into `out` (stall cycles rounded to whole
    /// cycles).
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("link_transfers", self.transfers);
        out.add("link_stall_cycles", self.stall_total.round() as u64);
    }

    /// Sends `bytes` over `hops` hops starting no earlier than `now`,
    /// returning the total cycles the caller observes (stall + transfer).
    pub fn send(&mut self, bytes: u64, hops: u32, now: f64) -> f64 {
        self.transfers += 1;
        let stall = (self.busy_until - now).max(0.0);
        self.stall_total += stall;
        let xfer = self.config.transfer_cycles(bytes, hops);
        // The link is occupied for the payload duration (the hop latency is
        // pipeline depth, not occupancy).
        self.busy_until = now + stall + self.config.cycles_per_byte * bytes as f64;
        stall + xfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig {
            cycles_per_byte: 0.5,
            per_hop_cycles: 4.0,
        }
    }

    #[test]
    fn validate_rejects_negative_costs() {
        assert!(LinkConfig {
            cycles_per_byte: -0.1,
            per_hop_cycles: 0.0
        }
        .validate()
        .is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn transfer_cost_composition() {
        let c = cfg();
        assert_eq!(c.transfer_cycles(32, 2), 8.0 + 16.0);
        assert_eq!(c.transfer_cycles(0, 3), 12.0);
    }

    #[test]
    fn bandwidth_at_clock() {
        // 0.5 cycles/byte at 150 MHz = 300 MB/s.
        assert!((cfg().bandwidth_mb_s(150.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn shared_link_throttles_second_sender() {
        let mut l = Link::new(cfg()).unwrap();
        let first = l.send(64, 1, 0.0);
        assert_eq!(first, 4.0 + 32.0);
        // A second transfer at the same instant queues behind the payload.
        let second = l.send(64, 1, 0.0);
        assert!(
            second > first,
            "second sender must stall: {second} vs {first}"
        );
        assert!(l.total_stall_cycles() > 0.0);
    }

    #[test]
    fn idle_link_does_not_stall() {
        let mut l = Link::new(cfg()).unwrap();
        l.send(64, 1, 0.0);
        let late = l.send(64, 1, 1_000.0);
        assert_eq!(late, 36.0);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut l = Link::new(cfg()).unwrap();
        l.send(1 << 20, 1, 0.0);
        l.reset();
        assert_eq!(l.send(8, 1, 0.0), 8.0);
        assert_eq!(l.transfers(), 1);
    }
}
