//! Property tests for fault-aware torus routing: whatever links fail, a
//! returned route is loop-free, complete, and live; and faults only ever
//! reduce delivered bandwidth.

use std::collections::HashSet;

use gasnub_interconnect::link::LinkConfig;
use gasnub_interconnect::netsim::{simulate, simulate_with_faults, Flow};
use gasnub_interconnect::topology::{ChannelFaults, NodeId, Torus3d};
use gasnub_memsim::rng::{run_cases, Rng};
use gasnub_memsim::SimError;

fn arb_torus(rng: &mut Rng) -> Torus3d {
    let dim = |rng: &mut Rng| rng.gen_range(1, 5) as u32;
    Torus3d::new([dim(rng), dim(rng), dim(rng)]).unwrap()
}

/// Fails a random subset of directed channels and degrades another.
fn arb_faults(rng: &mut Rng, torus: &Torus3d) -> ChannelFaults {
    let mut faults = ChannelFaults::none();
    for node in 0..torus.nodes() {
        let from = NodeId(node);
        for to in torus.neighbors(from) {
            let roll = rng.gen_f64();
            if roll < 0.15 {
                faults.fail_channel(from, to);
            } else if roll < 0.35 {
                faults
                    .degrade_channel(from, to, 0.1 + 0.9 * rng.gen_f64())
                    .unwrap();
            }
        }
    }
    faults
}

fn arb_pair(rng: &mut Rng, torus: &Torus3d) -> (NodeId, NodeId) {
    let n = u64::from(torus.nodes());
    (
        NodeId(rng.gen_range(0, n) as u32),
        NodeId(rng.gen_range(0, n) as u32),
    )
}

#[test]
fn routes_around_faults_are_loop_free_live_and_complete() {
    run_cases(0xFA_017, 200, |rng| {
        let torus = arb_torus(rng);
        let faults = arb_faults(rng, &torus);
        let (from, to) = arb_pair(rng, &torus);
        match torus.route_avoiding(from, to, &faults) {
            Ok(path) => {
                if from == to {
                    assert!(path.is_empty());
                    return;
                }
                // Complete: starts at `from`, ends at `to`, hops chain up.
                assert_eq!(path.first().unwrap().0, from);
                assert_eq!(path.last().unwrap().1, to);
                for pair in path.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "hops must chain");
                }
                // Loop-free: no node is visited twice.
                let mut seen = HashSet::new();
                assert!(seen.insert(from));
                for &(_, next) in &path {
                    assert!(seen.insert(next), "route revisits {next:?}");
                }
                // Live: every hop is an intact neighbor channel.
                for &(a, b) in &path {
                    assert!(
                        !faults.is_failed(a, b),
                        "route uses failed channel {a:?}->{b:?}"
                    );
                    assert!(
                        torus.neighbors(a).contains(&b),
                        "route teleports {a:?}->{b:?}"
                    );
                }
            }
            Err(SimError::Unroutable { .. }) => {
                // Acceptable only when the faults really disconnect the pair:
                // an exhaustive reachability check must agree.
                let mut reached = HashSet::from([from]);
                let mut frontier = vec![from];
                while let Some(node) = frontier.pop() {
                    for next in torus.neighbors(node) {
                        if !faults.is_failed(node, next) && reached.insert(next) {
                            frontier.push(next);
                        }
                    }
                }
                assert!(
                    !reached.contains(&to),
                    "reported unroutable but a live path exists"
                );
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

#[test]
fn healthy_routes_match_dimension_order() {
    run_cases(0xD10D, 100, |rng| {
        let torus = arb_torus(rng);
        let (from, to) = arb_pair(rng, &torus);
        let route = torus
            .route_avoiding(from, to, &ChannelFaults::none())
            .unwrap();
        assert_eq!(
            route,
            torus.route(from, to),
            "no faults must mean dimension order"
        );
    });
}

#[test]
fn degraded_fabric_never_delivers_more_bandwidth() {
    let link = LinkConfig {
        cycles_per_byte: 0.5,
        per_hop_cycles: 4.0,
    };
    run_cases(0xBA_2D, 60, |rng| {
        let torus = arb_torus(rng);
        if torus.nodes() < 2 {
            return;
        }
        // Degrade only (no failures): routes stay identical, so bandwidth
        // must be monotonically <= the healthy fabric's cell by cell.
        let mut faults = ChannelFaults::none();
        for node in 0..torus.nodes() {
            let from = NodeId(node);
            for to in torus.neighbors(from) {
                if rng.gen_bool(0.4) {
                    faults
                        .degrade_channel(from, to, 0.1 + 0.9 * rng.gen_f64())
                        .unwrap();
                }
            }
        }
        let flows: Vec<Flow> = (0..4)
            .map(|_| {
                let (from, to) = arb_pair(rng, &torus);
                Flow {
                    from,
                    to,
                    bytes: 1 + rng.gen_range(0, 1 << 16),
                }
            })
            .filter(|f| f.from != f.to)
            .collect();
        if flows.is_empty() {
            return;
        }
        let healthy = simulate(&torus, &link, &flows);
        let degraded = simulate_with_faults(&torus, &link, &flows, &faults).unwrap();
        assert!(
            degraded.delivered_bytes_per_cycle <= healthy.delivered_bytes_per_cycle + 1e-9,
            "degraded links must not speed up the fabric: {} vs {}",
            degraded.delivered_bytes_per_cycle,
            healthy.delivered_bytes_per_cycle
        );
        assert!(degraded.makespan_cycles >= healthy.makespan_cycles - 1e-9);
    });
}

#[test]
fn fault_simulation_is_reproducible() {
    let link = LinkConfig {
        cycles_per_byte: 0.25,
        per_hop_cycles: 3.0,
    };
    let torus = Torus3d::new([4, 4, 2]).unwrap();
    let mut rng = Rng::new(77);
    let faults = arb_faults(&mut rng, &torus);
    let flows = vec![
        Flow {
            from: NodeId(0),
            to: NodeId(9),
            bytes: 4096,
        },
        Flow {
            from: NodeId(3),
            to: NodeId(12),
            bytes: 1 << 20,
        },
    ];
    let a = simulate_with_faults(&torus, &link, &flows, &faults);
    let b = simulate_with_faults(&torus, &link, &flows, &faults);
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.makespan_cycles.to_bits(), b.makespan_cycles.to_bits());
            assert_eq!(
                a.delivered_bytes_per_cycle.to_bits(),
                b.delivered_bytes_per_cycle.to_bits()
            );
        }
        (Err(_), Err(_)) => {}
        _ => panic!("the two runs disagreed about routability"),
    }
}
