//! Configuration types behave as value types: cloneable, comparable, and
//! (for the enums users store in results files) label round-trippable.

use gasnub_machines::calibration::calibration_table;
use gasnub_machines::machine::{MachineId, Measurement};
use gasnub_machines::params;

#[test]
fn machine_id_round_trips_through_labels() {
    for id in [
        MachineId::Dec8400,
        MachineId::CrayT3d,
        MachineId::CrayT3e,
        MachineId::Custom,
    ] {
        let label = id.label();
        let back = MachineId::from_label(label).expect("labels parse back");
        assert_eq!(back, id, "round trip through '{label}'");
        let parsed: MachineId = label.parse().expect("FromStr agrees with from_label");
        assert_eq!(parsed, id);
    }
}

#[test]
fn unknown_machine_id_is_rejected() {
    assert_eq!(MachineId::from_label("Paragon"), None);
    assert!("Paragon".parse::<MachineId>().is_err());
}

#[test]
fn measurement_is_a_value_type() {
    let m = Measurement::new(4096, 128.0, 300.0);
    let copied = m;
    assert_eq!(m, copied);
    assert!((m.mb_s - 4096.0 * 300.0 / 128.0).abs() < 1e-9);
}

#[test]
fn configs_are_cloneable_and_stable() {
    let node = params::t3e_node();
    assert_eq!(
        node,
        node.clone(),
        "machine descriptions must be value types"
    );
    assert_eq!(params::dec8400_smp(), params::dec8400_smp().clone());
    assert_eq!(params::t3d_remote(), params::t3d_remote().clone());
    assert_eq!(params::t3e_remote(), params::t3e_remote().clone());
}

#[test]
fn calibration_table_is_self_consistent() {
    let table = calibration_table();
    assert!(
        table.len() >= 28,
        "the table covers the paper's quoted values"
    );
    for p in &table {
        assert!(p.paper_mb_s > 0.0, "{}: paper value must be positive", p.id);
        assert!(
            p.tolerance > 0.0 && p.tolerance < 1.0,
            "{}: tolerance sane",
            p.id
        );
        assert!(!p.source.is_empty());
        assert_eq!(
            table.iter().filter(|q| q.id == p.id).count(),
            1,
            "duplicate id {}",
            p.id
        );
    }
}
