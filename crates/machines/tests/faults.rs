//! Degraded-machine invariants: a `FaultPlan` only ever slows a machine
//! down, and does so deterministically.

use gasnub_machines::{Dec8400, FaultPlan, Machine, MeasureLimits, T3d, T3e};

fn fast() -> MeasureLimits {
    MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    }
}

const WS: u64 = 1 << 20;

#[test]
fn zero_severity_plan_matches_healthy_t3d() {
    let plan = FaultPlan::new(11, 0.0).unwrap();
    let mut healthy = T3d::new();
    let mut degraded = T3d::with_faults(&plan).unwrap();
    healthy.set_limits(fast());
    degraded.set_limits(fast());
    let h = healthy.remote_deposit(WS, 1).unwrap();
    let d = degraded.remote_deposit(WS, 1).unwrap();
    assert_eq!(h.cycles, d.cycles, "severity 0 must be a healthy machine");
}

#[test]
fn degraded_t3d_is_never_faster() {
    for seed in [1_u64, 7, 42] {
        let plan = FaultPlan::new(seed, 0.6).unwrap();
        let mut healthy = T3d::new();
        let mut degraded = T3d::with_faults(&plan).unwrap();
        healthy.set_limits(fast());
        degraded.set_limits(fast());
        for stride in [1_u64, 8] {
            let h = healthy.remote_deposit(WS, stride).unwrap();
            let d = degraded.remote_deposit(WS, stride).unwrap();
            assert!(
                d.cycles >= h.cycles,
                "seed {seed} stride {stride}: {} < {}",
                d.cycles,
                h.cycles
            );
            let h = healthy.remote_fetch(WS, stride).unwrap();
            let d = degraded.remote_fetch(WS, stride).unwrap();
            assert!(d.cycles >= h.cycles, "fetch seed {seed} stride {stride}");
        }
    }
}

#[test]
fn degraded_t3e_is_never_faster() {
    for seed in [3_u64, 19] {
        let plan = FaultPlan::new(seed, 0.6).unwrap();
        let mut healthy = T3e::new();
        let mut degraded = T3e::with_faults(&plan).unwrap();
        healthy.set_limits(fast());
        degraded.set_limits(fast());
        for stride in [1_u64, 4] {
            let h = healthy.remote_deposit(WS, stride).unwrap();
            let d = degraded.remote_deposit(WS, stride).unwrap();
            assert!(d.cycles >= h.cycles, "seed {seed} stride {stride}");
        }
    }
}

#[test]
fn degraded_dec8400_pull_is_never_faster() {
    let plan = FaultPlan::new(5, 0.8).unwrap();
    let mut healthy = Dec8400::new();
    let mut degraded = Dec8400::with_faults(&plan).unwrap();
    healthy.set_limits(fast());
    degraded.set_limits(fast());
    let h = healthy.remote_load(WS, 1).unwrap();
    let d = degraded.remote_load(WS, 1).unwrap();
    assert!(
        d.cycles > h.cycles,
        "jittered bus must slow the coherent pull"
    );
}

#[test]
fn same_plan_gives_identical_cycle_counts() {
    let plan = FaultPlan::new(42, 0.5).unwrap();
    let run = |plan: &FaultPlan| {
        let mut t3d = T3d::with_faults(plan).unwrap();
        t3d.set_limits(fast());
        let a = t3d.remote_deposit(WS, 1).unwrap().cycles;
        let b = t3d.remote_fetch(WS, 8).unwrap().cycles;
        let mut t3e = T3e::with_faults(plan).unwrap();
        t3e.set_limits(fast());
        let c = t3e.remote_deposit(WS, 2).unwrap().cycles;
        let mut dec = Dec8400::with_faults(plan).unwrap();
        dec.set_limits(fast());
        let d = dec.remote_load(WS, 1).unwrap().cycles;
        (a.to_bits(), b.to_bits(), c.to_bits(), d.to_bits())
    };
    assert_eq!(
        run(&plan),
        run(&plan),
        "same FaultPlan must give bit-identical cycles"
    );
}

#[test]
fn harsher_plans_hurt_more_on_average() {
    // Not guaranteed per-seed (a mild plan can happen to hit the canonical
    // route), so compare totals over a handful of seeds.
    let total = |severity: f64| -> f64 {
        (0..6_u64)
            .map(|seed| {
                let plan = FaultPlan::new(seed, severity).unwrap();
                let mut t3d = T3d::with_faults(&plan).unwrap();
                t3d.set_limits(fast());
                t3d.remote_deposit(WS, 1).unwrap().cycles
            })
            .sum()
    };
    assert!(total(0.9) > total(0.1));
}
