//! Per-process probe memoization: the warm path's repeat-cell shortcut.
//!
//! Probes are pure functions of the machine description and the cell
//! parameters: every probe starts from the flushed (≡ just-constructed)
//! state, so an engine built from the same [`crate::spec::MachineSpec`]
//! produces bit-identical [`Measurement`]s for the same `(op, working set,
//! stride)` cell — a property the determinism suite asserts. This module
//! exploits that purity with a process-wide memo table in front of
//! [`crate::engine::TransferEngine`]'s probes: repeated cells across
//! `faults`/`trace`/`sweep` invocations (and across threads) skip the
//! simulation entirely.
//!
//! The key covers everything a probe result depends on:
//!
//! * the **spec hash** ([`crate::spec::MachineSpec::spec_hash`]) — fault
//!   plans fold into the spec deterministically, so degraded installations
//!   hash (and therefore memoize) separately;
//! * the **operation** and its `(working set, stride, second stride)` cell;
//! * the **measurement caps** ([`crate::limits::MeasureLimits`]), which are
//!   runtime state an engine can change after construction.
//!
//! Lookups are bypassed whenever a probe's side effects matter: an enabled
//! recorder must observe real component counters, and the `--cold` escape
//! hatch ([`gasnub_memsim::cold_path`]) forces full re-execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::machine::Measurement;
use crate::probe::ProbeOp;

/// Everything a probe's result is a pure function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct MemoKey {
    pub spec_hash: u64,
    pub op: ProbeOp,
    pub ws_bytes: u64,
    /// Primary stride (load stride for copies; 0 for gathers).
    pub stride: u64,
    /// Secondary stride (store stride for copies; 0 elsewhere).
    pub stride2: u64,
    pub max_measure_words: u64,
    pub max_prime_words: u64,
}

/// Entry cap: a hard bound on table growth for long-lived processes. At
/// ~80 bytes per entry the table tops out around 20 MB; past the cap new
/// results simply stop being inserted (lookups keep working).
const MAX_ENTRIES: usize = 1 << 18;

/// The table. `Option` values memoize *unsupported* outcomes too (e.g. the
/// 8400's missing deposit path), which are just as deterministic.
static TABLE: Mutex<Option<HashMap<MemoKey, Option<Measurement>>>> = Mutex::new(None);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn with_table<R>(f: impl FnOnce(&mut HashMap<MemoKey, Option<Measurement>>) -> R) -> R {
    let mut guard = match TABLE.lock() {
        Ok(g) => g,
        // A panic while holding the lock cannot leave the map torn (all
        // mutations are single HashMap calls); keep serving.
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.get_or_insert_with(HashMap::new))
}

/// Returns the memoized outcome for `key`, if any probe has produced it.
pub(crate) fn lookup(key: &MemoKey) -> Option<Option<Measurement>> {
    let found = with_table(|t| t.get(key).copied());
    match found {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    found
}

/// Records the outcome of a completed probe.
pub(crate) fn insert(key: MemoKey, value: Option<Measurement>) {
    with_table(|t| {
        if t.len() < MAX_ENTRIES || t.contains_key(&key) {
            t.insert(key, value);
        }
    });
}

/// Empties the table and zeroes the hit/miss counters. Benchmarks call this
/// between phases to measure first-pass (memo-cold) and steady-state
/// (memoized) rates separately.
pub fn clear() {
    with_table(HashMap::clear);
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// `(hits, misses)` since process start or the last [`clear`].
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Number of memoized outcomes currently held.
pub fn len() -> usize {
    with_table(|t| t.len())
}

/// Serializes tests that clear the (process-global) table or assert on its
/// counters; probes running in unrelated concurrent tests only ever *add*
/// traffic, which such tests must tolerate.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ws: u64) -> MemoKey {
        MemoKey {
            // A spec hash no real machine produces.
            spec_hash: 0xdead_beef_0bad_f00d,
            op: ProbeOp::LocalLoad,
            ws_bytes: ws,
            stride: 1,
            stride2: 0,
            max_measure_words: 32 * 1024,
            max_prime_words: 1024 * 1024,
        }
    }

    #[test]
    fn round_trips_and_counts() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let (hits0, misses0) = stats();
        assert_eq!(lookup(&key(1)), None);
        insert(key(1), Some(Measurement::new(8, 2.0, 300.0)));
        let hit = lookup(&key(1)).expect("inserted");
        assert_eq!(hit.unwrap().bytes, 8);
        let (hits, misses) = stats();
        assert!(hits > hits0, "hit must count: {hits0} -> {hits}");
        assert!(misses > misses0, "miss must count: {misses0} -> {misses}");
        clear();
        assert_eq!(lookup(&key(1)), None, "clear must empty the table");
    }

    #[test]
    fn memoizes_unsupported_outcomes() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        insert(key(3), None);
        assert_eq!(lookup(&key(3)), Some(None));
    }
}
