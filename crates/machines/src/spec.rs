//! Immutable machine specifications and the engine-spawning factory.
//!
//! A [`MachineSpec`] is the *description* of a machine: clock and hierarchy
//! parameters, NI/topology configuration, and any fault plan already folded
//! in. It owns no mutable simulation state, is `Clone + Send + Sync`, and
//! can be shared freely across threads. [`MachineSpec::build`] turns it
//! into a fresh [`TransferEngine`] — the cheap per-run object that owns all
//! mutable state. The [`SpawnEngine`] trait abstracts that factory step so
//! the sweep layer (`gasnub-core`) can hand every grid cell its own engine.
//!
//! Machine *identity* is data, not code: a spec is defined by a spec file
//! (see [`crate::specfile`] for the dialect) and the built-in machines are
//! embedded spec files parsed through the same loader. The
//! [`MachineId`] enum survives only as a *model-family tag* — a handful of
//! consumers (shmem call overheads, FFT scalability models, figure
//! renderers) model the three paper machines specifically and key off it;
//! everything else identifies a machine by its [`MachineSpec::label`] and
//! [`MachineSpec::spec_hash`].

use gasnub_coherence::smp::{SmpConfig, SnoopingSmp};
use gasnub_faults::FaultPlan;
use gasnub_interconnect::bus::BusJitterConfig;
use gasnub_interconnect::link::Link;
use gasnub_interconnect::ni::{ERegisters, NiLossConfig, NiLossModel, T3dNi};
use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::write_buffer::WriteBuffer;
use gasnub_memsim::{ConfigError, SimError};

use crate::engine::{T3dRemotePath, TransferEngine};
use crate::limits::MeasureLimits;
use crate::machine::{Machine, MachineId};
use crate::params::{T3dRemoteParams, T3eRemoteParams};
use crate::specfile::{self, SpecError};

/// The model family of a spec, plus its full parameterization.
///
/// The family selects the simulation backend; it deliberately does *not*
/// name a machine. A two-socket NUMA node is a `Torus` (the remote socket
/// is one hop over the processor interconnect), a many-core server is an
/// `Smp` — same models, different parameter files.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SpecKind {
    /// A snooping-bus SMP; remote transfers are coherent consumer pulls.
    Smp {
        smp: SmpConfig,
        bus_jitter: Option<BusJitterConfig>,
    },
    /// One node plus NI fetch/deposit circuitry over point-to-point links.
    Torus {
        node: NodeConfig,
        remote: T3dRemoteParams,
        ni_loss: Option<NiLossConfig>,
    },
    /// One node plus an E-register block/word remote path.
    Eregs {
        node: NodeConfig,
        remote: T3eRemoteParams,
        ni_loss: Option<NiLossConfig>,
    },
    /// A single node without remote paths (local probes only).
    Node { node: NodeConfig },
}

impl SpecKind {
    /// The deterministic seed for the gather probe's index permutation.
    /// Keyed by model family so a zoo-loaded paper machine shuffles
    /// identically to its built-in twin.
    fn gather_seed(&self) -> u64 {
        match self {
            SpecKind::Smp { .. } => 0x8400,
            SpecKind::Torus { .. } => 0x73d,
            SpecKind::Eregs { .. } => 0x73e,
            SpecKind::Node { .. } => 0xC05705,
        }
    }
}

/// An immutable, thread-shareable machine description.
///
/// Construction is free of validation — errors surface when
/// [`MachineSpec::build`] assembles the engine, mirroring the builder
/// pattern of [`crate::custom::CustomMachineBuilder`]. Specs loaded from
/// files ([`MachineSpec::from_spec_str`]) *are* validated at load time,
/// because a file's errors should point at the file.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Model-family tag; `Custom` for everything but the paper machines.
    id: MachineId,
    /// Short registry label ("t3d", "numa2s", …) — the name the CLI
    /// resolves and tables report.
    label: String,
    /// Optional human-readable display name; `None` falls back to the
    /// canonical id display ("Cray T3D") or the label.
    display: Option<String>,
    /// Alternative labels the registry also resolves.
    aliases: Vec<String>,
    /// One-line description for machine listings.
    summary: String,
    /// Relative tolerance for calibration assertions, when the spec
    /// carries calibrated bandwidth expectations.
    calibration_tolerance: Option<f64>,
    kind: SpecKind,
    limits: MeasureLimits,
}

/// Embedded spec files: the built-in machines are ordinary zoo files,
/// parsed through the same loader as everything under `machines/zoo/`.
macro_rules! zoo_file {
    ($name:literal) => {
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../machines/zoo/",
            $name
        ))
    };
}

/// The embedded spec text of the built-in machines, in registry order.
pub(crate) const BUILTIN_SPECS: &[(&str, &str)] = &[
    ("dec8400", zoo_file!("dec8400.toml")),
    ("t3d", zoo_file!("t3d.toml")),
    ("t3e", zoo_file!("t3e.toml")),
    ("custom", zoo_file!("custom.toml")),
];

fn builtin(label: &str) -> MachineSpec {
    let text = BUILTIN_SPECS
        .iter()
        .find(|(name, _)| *name == label)
        .map(|(_, text)| *text)
        .expect("builtin spec table covers every builtin label");
    MachineSpec::from_spec_str(text).expect("embedded builtin specs must parse")
}

impl MachineSpec {
    /// The paper's four-processor DEC 8400.
    pub fn dec8400() -> Self {
        builtin("dec8400")
    }

    /// A DEC 8400 variant from an explicit SMP configuration.
    pub fn dec8400_with(smp: SmpConfig) -> Self {
        MachineSpec {
            id: MachineId::Dec8400,
            label: "dec8400".to_string(),
            display: None,
            aliases: Vec::new(),
            summary: String::new(),
            calibration_tolerance: None,
            kind: SpecKind::Smp {
                smp,
                bus_jitter: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper's Cray T3D PE.
    pub fn t3d() -> Self {
        builtin("t3d")
    }

    /// A T3D variant from explicit node and remote-path parameters.
    pub fn t3d_with(node: NodeConfig, remote: T3dRemoteParams) -> Self {
        MachineSpec {
            id: MachineId::CrayT3d,
            label: "t3d".to_string(),
            display: None,
            aliases: Vec::new(),
            summary: String::new(),
            calibration_tolerance: None,
            kind: SpecKind::Torus {
                node,
                remote,
                ni_loss: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper's Cray T3E PE.
    pub fn t3e() -> Self {
        builtin("t3e")
    }

    /// A T3E variant from explicit node and remote-path parameters.
    pub fn t3e_with(node: NodeConfig, remote: T3eRemoteParams) -> Self {
        MachineSpec {
            id: MachineId::CrayT3e,
            label: "t3e".to_string(),
            display: None,
            aliases: Vec::new(),
            summary: String::new(),
            calibration_tolerance: None,
            kind: SpecKind::Eregs {
                node,
                remote,
                ni_loss: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// A user-described single-node machine (local probes only).
    pub fn custom(name: impl Into<String>, node: NodeConfig) -> Self {
        MachineSpec {
            id: MachineId::Custom,
            label: "custom".to_string(),
            display: Some(name.into()),
            aliases: Vec::new(),
            summary: String::new(),
            calibration_tolerance: None,
            kind: SpecKind::Node { node },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper-parameter spec for a machine id. `Custom` resolves to the
    /// reference node the test presets describe, so every id the CLI can
    /// parse also names a machine that runs.
    pub fn for_id(id: MachineId) -> Self {
        match id {
            MachineId::Dec8400 => Self::dec8400(),
            MachineId::CrayT3d => Self::t3d(),
            MachineId::CrayT3e => Self::t3e(),
            MachineId::Custom => builtin("custom"),
        }
    }

    /// Assembles a spec from decoded parts (the loader's constructor).
    pub(crate) fn from_parts(
        id: MachineId,
        label: String,
        display: Option<String>,
        aliases: Vec<String>,
        summary: String,
        calibration_tolerance: Option<f64>,
        kind: SpecKind,
    ) -> Self {
        MachineSpec {
            id,
            label,
            display,
            aliases,
            summary,
            calibration_tolerance,
            kind,
            limits: MeasureLimits::new(),
        }
    }

    /// Parses a machine spec file (see [`crate::specfile`] for the
    /// dialect). The three paper machines keep their canonical
    /// [`MachineId`]; any other spec is [`MachineId::Custom`].
    ///
    /// # Errors
    ///
    /// Returns a structured [`SpecError`] locating the offending line/key
    /// for syntax errors, unknown or missing keys, type mismatches, and
    /// out-of-range values.
    pub fn from_spec_str(text: &str) -> Result<Self, SpecError> {
        specfile::parse_spec(text)
    }

    /// Serializes this spec to the file dialect [`from_spec_str`] reads.
    /// The round trip is exact: `from_spec_str(to_spec_string(s)) == s`
    /// (measurement limits are runtime caps, not part of the description,
    /// and are not serialized).
    ///
    /// [`from_spec_str`]: MachineSpec::from_spec_str
    pub fn to_spec_string(&self) -> String {
        specfile::render_spec(self)
    }

    /// A stable 64-bit identity hash (FNV-1a over the canonical
    /// serialization). Two specs hash equal iff they describe the same
    /// machine — checkpoint headers store this so a resumed sweep can
    /// refuse a checkpoint written by a different machine description.
    pub fn spec_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_spec_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// The model-family tag (paper machines keep their canonical id; every
    /// other spec is `Custom`).
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The short registry label ("t3d", "numa2s", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The human-readable display name: the spec's `display` field, the
    /// canonical machine name for paper machines, or the label.
    pub fn display_name(&self) -> String {
        match (&self.display, self.id) {
            (Some(d), _) => d.clone(),
            (None, MachineId::Custom) => self.label.clone(),
            (None, id) => id.to_string(),
        }
    }

    /// Optional explicit display name from the spec file.
    pub(crate) fn display(&self) -> Option<&str> {
        self.display.as_deref()
    }

    /// Alternative labels the registry resolves to this spec.
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// One-line description for machine listings.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Relative tolerance for calibration assertions, if the spec sets one.
    pub fn calibration_tolerance(&self) -> Option<f64> {
        self.calibration_tolerance
    }

    /// The processor clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        match &self.kind {
            SpecKind::Smp { smp, .. } => smp.node.cpu.clock_mhz,
            SpecKind::Torus { node, .. }
            | SpecKind::Eregs { node, .. }
            | SpecKind::Node { node } => node.cpu.clock_mhz,
        }
    }

    /// Whether this spec's model family has a remote path (so `faults`,
    /// `remote_fetch` and friends apply).
    pub fn has_remote_path(&self) -> bool {
        !matches!(self.kind, SpecKind::Node { .. })
    }

    /// The node-level memory configuration (caches, DRAM, CPU issue
    /// costs) this spec builds its processing element from. For SMP
    /// specs this is the per-node configuration behind the shared bus.
    pub fn node_config(&self) -> &NodeConfig {
        match &self.kind {
            SpecKind::Smp { smp, .. } => &smp.node,
            SpecKind::Torus { node, .. }
            | SpecKind::Eregs { node, .. }
            | SpecKind::Node { node } => node,
        }
    }

    /// The model family name ("smp", "torus", "eregs", "node").
    pub fn model_family(&self) -> &'static str {
        match &self.kind {
            SpecKind::Smp { .. } => "smp",
            SpecKind::Torus { .. } => "torus",
            SpecKind::Eregs { .. } => "eregs",
            SpecKind::Node { .. } => "node",
        }
    }

    pub(crate) fn kind(&self) -> &SpecKind {
        &self.kind
    }

    /// Replaces the measurement caps every spawned engine starts with.
    #[must_use]
    pub fn with_limits(mut self, limits: MeasureLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The measurement caps spawned engines start with.
    pub fn limits(&self) -> MeasureLimits {
        self.limits
    }

    /// Folds a fault plan into the spec: failed/degraded torus channels
    /// become more hops and a scaled per-byte link rate, network interfaces
    /// pick up the plan's loss model, and bus-based machines give their
    /// arbiter deterministic jitter. Same plan, same cycle counts — the
    /// transform happens once here, not per engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the plan disconnects the canonical remote
    /// pair, or for a node-only machine (which has no remote path or shared
    /// bus to degrade).
    pub fn with_faults(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        match &mut self.kind {
            SpecKind::Smp { bus_jitter, .. } => {
                *bus_jitter = Some(plan.bus_jitter());
            }
            SpecKind::Torus {
                remote, ni_loss, ..
            } => {
                let impact = plan.remote_impact()?;
                remote.hops = impact.hops.max(remote.hops);
                remote.link.cycles_per_byte *= impact.per_byte_scale();
                *ni_loss = Some(plan.ni_loss());
            }
            SpecKind::Eregs {
                remote, ni_loss, ..
            } => {
                let impact = plan.remote_impact()?;
                remote.hops = impact.hops.max(remote.hops);
                remote.link.cycles_per_byte *= impact.per_byte_scale();
                // The coalesced block path is paced by the same bottleneck
                // channel.
                remote.block_cycles *= impact.per_byte_scale();
                *ni_loss = Some(plan.ni_loss());
            }
            SpecKind::Node { .. } => {
                return Err(SimError::unsupported(
                    "fault plans on machines without a remote path or shared bus",
                ));
            }
        }
        Ok(self)
    }

    /// Validates the description and assembles a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any component description is invalid.
    pub fn build(self) -> Result<TransferEngine, ConfigError> {
        let spec_hash = self.spec_hash();
        let limits = self.limits;
        let seed = self.kind.gather_seed();
        let (id, label, display) = (self.id, self.label, self.display);
        let mut built = match self.kind {
            SpecKind::Smp { smp, bus_jitter } => {
                let mut system = SnoopingSmp::new(smp)?;
                if let Some(jitter) = bus_jitter {
                    system.set_bus_jitter(Some(jitter))?;
                }
                TransferEngine::new_smp(id, system, seed, limits)
            }
            SpecKind::Torus {
                node,
                remote,
                ni_loss,
            } => {
                let engine = MemoryEngine::try_new(node.clone())?;
                let ni = T3dNi::new(remote.ni.clone())?;
                let link = Link::new(remote.link.clone())?;
                let dest_write = WriteBuffer::new(remote.dest_write.clone())?;
                let dest_dram = Dram::new(remote.dest_dram.clone())?;
                let remote_dram = Dram::new(node.hierarchy.dram.clone())?;
                let path = T3dRemotePath::new(remote, ni, link, dest_write, dest_dram, remote_dram);
                let mut built = TransferEngine::new_torus(id, engine, path, seed, limits);
                if let Some(loss) = ni_loss {
                    built.set_ni_loss(NiLossModel::new(loss)?);
                }
                built
            }
            SpecKind::Eregs {
                node,
                remote,
                ni_loss,
            } => {
                let engine = MemoryEngine::try_new(node)?;
                let eregs = ERegisters::new(remote.eregs.clone())?;
                let link = Link::new(remote.link.clone())?;
                let dest_banks = Dram::new(remote.dest_word_banks.clone())?;
                let mut built = TransferEngine::new_eregs(
                    id, engine, remote, eregs, link, dest_banks, seed, limits,
                );
                if let Some(loss) = ni_loss {
                    built.set_ni_loss(NiLossModel::new(loss)?);
                }
                built
            }
            SpecKind::Node { node } => {
                let engine = MemoryEngine::try_new(node)?;
                TransferEngine::new_node(id, engine, seed, limits)
            }
        };
        built.set_identity(label, display);
        built.set_spec_hash(spec_hash);
        Ok(built)
    }
}

/// A thread-shareable factory of independent probe engines.
///
/// The sweep layer is generic over this: each grid cell spawns its own
/// engine, so cells need no synchronization and can run on any thread.
/// Because every probe starts by flushing all mutable state, a fresh engine
/// measures exactly what a reused one would — parallel results are
/// bit-identical to sequential ones.
pub trait SpawnEngine: Sync {
    /// The engine type this factory produces.
    type Engine: Machine + Send;

    /// Builds one independent engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the underlying description is invalid.
    fn spawn_engine(&self) -> Result<Self::Engine, SimError>;
}

impl SpawnEngine for MachineSpec {
    type Engine = TransferEngine;

    fn spawn_engine(&self) -> Result<TransferEngine, SimError> {
        Ok(self.clone().build()?)
    }
}

/// Any `Sync` closure producing a machine is a factory; this keeps ad-hoc
/// uses (tests, custom wrappers) free of boilerplate.
impl<F, M> SpawnEngine for F
where
    F: Fn() -> M + Sync,
    M: Machine + Send,
{
    type Engine = M;

    fn spawn_engine(&self) -> Result<M, SimError> {
        Ok(self())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    #[test]
    fn spec_is_send_sync_and_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<MachineSpec>();
    }

    #[test]
    fn for_id_covers_every_label() {
        for id in [
            MachineId::Dec8400,
            MachineId::CrayT3d,
            MachineId::CrayT3e,
            MachineId::Custom,
        ] {
            let spec = MachineSpec::for_id(id);
            assert_eq!(spec.id(), id);
            assert_eq!(spec.label(), id.label());
            let engine = spec.build().expect("paper parameters must validate");
            assert_eq!(engine.id(), id);
            assert_eq!(engine.label(), id.label());
        }
    }

    #[test]
    fn builtin_specs_match_the_parameter_tables() {
        // The embedded spec files are the same machines the parameter
        // tables describe — the files are the single source of truth, and
        // this pins them to the paper's §3 numbers.
        assert_eq!(
            *MachineSpec::dec8400().kind(),
            SpecKind::Smp {
                smp: params::dec8400_smp(),
                bus_jitter: None
            }
        );
        assert_eq!(
            *MachineSpec::t3d().kind(),
            SpecKind::Torus {
                node: params::t3d_node(),
                remote: params::t3d_remote(),
                ni_loss: None
            }
        );
        assert_eq!(
            *MachineSpec::t3e().kind(),
            SpecKind::Eregs {
                node: params::t3e_node(),
                remote: params::t3e_remote(),
                ni_loss: None
            }
        );
    }

    #[test]
    fn display_names_keep_their_canonical_form() {
        assert_eq!(MachineSpec::dec8400().display_name(), "DEC 8400");
        assert_eq!(MachineSpec::t3d().display_name(), "Cray T3D");
        assert_eq!(MachineSpec::t3e().display_name(), "Cray T3E");
        assert_eq!(
            MachineSpec::for_id(MachineId::Custom).display_name(),
            "reference custom node"
        );
    }

    #[test]
    fn spawned_engines_match_probes_of_wrapper_machines() {
        use crate::{Machine, T3d};
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut spawned = spec.spawn_engine().unwrap();
        let mut wrapper = T3d::new();
        wrapper.set_limits(MeasureLimits::fast());
        let a = spawned.remote_deposit(1 << 20, 16).unwrap();
        let b = wrapper.remote_deposit(1 << 20, 16).unwrap();
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
        let a = spawned.local_load(1 << 20, 2);
        let b = wrapper.local_load(1 << 20, 2);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    }

    #[test]
    fn faults_on_node_only_specs_are_unsupported() {
        let plan = FaultPlan::new(1, 0.5).unwrap();
        let spec = MachineSpec::for_id(MachineId::Custom);
        assert!(spec.with_faults(&plan).is_err());
    }

    #[test]
    fn fault_plans_fold_into_the_spec_deterministically() {
        let plan = FaultPlan::new(7, 0.6).unwrap();
        let a = MachineSpec::t3d()
            .with_faults(&plan)
            .unwrap()
            .with_limits(MeasureLimits::fast());
        let b = MachineSpec::t3d()
            .with_faults(&plan)
            .unwrap()
            .with_limits(MeasureLimits::fast());
        let ma = a
            .spawn_engine()
            .unwrap()
            .remote_deposit(1 << 20, 8)
            .unwrap();
        let mb = b
            .spawn_engine()
            .unwrap()
            .remote_deposit(1 << 20, 8)
            .unwrap();
        assert_eq!(ma.cycles.to_bits(), mb.cycles.to_bits());
    }

    #[test]
    fn spec_hash_distinguishes_machines_and_is_stable() {
        let hashes: Vec<u64> = [
            MachineSpec::dec8400(),
            MachineSpec::t3d(),
            MachineSpec::t3e(),
            MachineSpec::for_id(MachineId::Custom),
        ]
        .iter()
        .map(MachineSpec::spec_hash)
        .collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b, "distinct machines must hash differently");
            }
        }
        assert_eq!(
            MachineSpec::t3d().spec_hash(),
            MachineSpec::t3d().spec_hash()
        );
    }

    #[test]
    fn closures_are_spawners() {
        fn takes_spawner<S: SpawnEngine>(s: &S) -> MachineId {
            s.spawn_engine().unwrap().id()
        }
        let spawner = || {
            let mut m = crate::T3e::new();
            m.set_limits(MeasureLimits::fast());
            m
        };
        assert_eq!(takes_spawner(&spawner), MachineId::CrayT3e);
    }
}
