//! Immutable machine specifications and the engine-spawning factory.
//!
//! A [`MachineSpec`] is the *description* of a machine: clock and hierarchy
//! parameters, NI/topology configuration, and any fault plan already folded
//! in. It owns no mutable simulation state, is `Clone + Send + Sync`, and
//! can be shared freely across threads. [`MachineSpec::build`] turns it
//! into a fresh [`TransferEngine`] — the cheap per-run object that owns all
//! mutable state. The [`SpawnEngine`] trait abstracts that factory step so
//! the sweep layer (`gasnub-core`) can hand every grid cell its own engine.

use gasnub_coherence::smp::{SmpConfig, SnoopingSmp};
use gasnub_faults::FaultPlan;
use gasnub_interconnect::bus::BusJitterConfig;
use gasnub_interconnect::link::Link;
use gasnub_interconnect::ni::{ERegisters, NiLossConfig, NiLossModel, T3dNi};
use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::write_buffer::WriteBuffer;
use gasnub_memsim::{ConfigError, SimError};

use crate::engine::{T3dRemotePath, TransferEngine};
use crate::limits::MeasureLimits;
use crate::machine::{Machine, MachineId};
use crate::params::{self, T3dRemoteParams, T3eRemoteParams};

/// Which machine a spec describes, plus its full parameterization.
#[derive(Debug, Clone)]
enum SpecKind {
    /// DEC 8400: the SMP description plus optional bus-arbiter jitter.
    Dec8400 {
        smp: SmpConfig,
        bus_jitter: Option<BusJitterConfig>,
    },
    /// Cray T3D: one PE plus the fetch/deposit remote path.
    T3d {
        node: NodeConfig,
        remote: T3dRemoteParams,
        ni_loss: Option<NiLossConfig>,
    },
    /// Cray T3E: one PE plus the E-register remote path.
    T3e {
        node: NodeConfig,
        remote: T3eRemoteParams,
        ni_loss: Option<NiLossConfig>,
    },
    /// A user-described single node without remote paths.
    Custom { name: String, node: NodeConfig },
}

/// An immutable, thread-shareable machine description.
///
/// Construction is free of validation — errors surface when
/// [`MachineSpec::build`] assembles the engine, mirroring the builder
/// pattern of [`crate::custom::CustomMachineBuilder`].
#[derive(Debug, Clone)]
pub struct MachineSpec {
    kind: SpecKind,
    limits: MeasureLimits,
}

impl MachineSpec {
    /// The paper's four-processor DEC 8400.
    pub fn dec8400() -> Self {
        Self::dec8400_with(params::dec8400_smp())
    }

    /// A DEC 8400 variant from an explicit SMP configuration.
    pub fn dec8400_with(smp: SmpConfig) -> Self {
        MachineSpec {
            kind: SpecKind::Dec8400 {
                smp,
                bus_jitter: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper's Cray T3D PE.
    pub fn t3d() -> Self {
        Self::t3d_with(params::t3d_node(), params::t3d_remote())
    }

    /// A T3D variant from explicit node and remote-path parameters.
    pub fn t3d_with(node: NodeConfig, remote: T3dRemoteParams) -> Self {
        MachineSpec {
            kind: SpecKind::T3d {
                node,
                remote,
                ni_loss: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper's Cray T3E PE.
    pub fn t3e() -> Self {
        Self::t3e_with(params::t3e_node(), params::t3e_remote())
    }

    /// A T3E variant from explicit node and remote-path parameters.
    pub fn t3e_with(node: NodeConfig, remote: T3eRemoteParams) -> Self {
        MachineSpec {
            kind: SpecKind::T3e {
                node,
                remote,
                ni_loss: None,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// A user-described single-node machine (local probes only).
    pub fn custom(name: impl Into<String>, node: NodeConfig) -> Self {
        MachineSpec {
            kind: SpecKind::Custom {
                name: name.into(),
                node,
            },
            limits: MeasureLimits::new(),
        }
    }

    /// The paper-parameter spec for a machine id. `Custom` resolves to the
    /// reference node the test presets describe, so every id the CLI can
    /// parse also names a machine that runs.
    pub fn for_id(id: MachineId) -> Self {
        match id {
            MachineId::Dec8400 => Self::dec8400(),
            MachineId::CrayT3d => Self::t3d(),
            MachineId::CrayT3e => Self::t3e(),
            MachineId::Custom => Self::custom(
                "reference custom node",
                gasnub_memsim::config::presets::tiny_test_node(),
            ),
        }
    }

    /// Which machine this spec describes.
    pub fn id(&self) -> MachineId {
        match &self.kind {
            SpecKind::Dec8400 { .. } => MachineId::Dec8400,
            SpecKind::T3d { .. } => MachineId::CrayT3d,
            SpecKind::T3e { .. } => MachineId::CrayT3e,
            SpecKind::Custom { .. } => MachineId::Custom,
        }
    }

    /// Replaces the measurement caps every spawned engine starts with.
    #[must_use]
    pub fn with_limits(mut self, limits: MeasureLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The measurement caps spawned engines start with.
    pub fn limits(&self) -> MeasureLimits {
        self.limits
    }

    /// Folds a fault plan into the spec: failed/degraded torus channels
    /// become more hops and a scaled per-byte link rate, network interfaces
    /// pick up the plan's loss model, and the 8400's bus arbiter its
    /// deterministic jitter. Same plan, same cycle counts — the transform
    /// happens once here, not per engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the plan disconnects the canonical remote
    /// pair, or for a custom machine (which has no remote path or shared
    /// bus to degrade).
    pub fn with_faults(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        match &mut self.kind {
            SpecKind::Dec8400 { bus_jitter, .. } => {
                *bus_jitter = Some(plan.bus_jitter());
            }
            SpecKind::T3d {
                remote, ni_loss, ..
            } => {
                let impact = plan.remote_impact()?;
                remote.hops = impact.hops.max(remote.hops);
                remote.link.cycles_per_byte *= impact.per_byte_scale();
                *ni_loss = Some(plan.ni_loss());
            }
            SpecKind::T3e {
                remote, ni_loss, ..
            } => {
                let impact = plan.remote_impact()?;
                remote.hops = impact.hops.max(remote.hops);
                remote.link.cycles_per_byte *= impact.per_byte_scale();
                // The coalesced block path is paced by the same bottleneck
                // channel.
                remote.block_cycles *= impact.per_byte_scale();
                *ni_loss = Some(plan.ni_loss());
            }
            SpecKind::Custom { .. } => {
                return Err(SimError::unsupported("fault plans on custom machines"));
            }
        }
        Ok(self)
    }

    /// Validates the description and assembles a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any component description is invalid.
    pub fn build(self) -> Result<TransferEngine, ConfigError> {
        let limits = self.limits;
        match self.kind {
            SpecKind::Dec8400 { smp, bus_jitter } => {
                let mut system = SnoopingSmp::new(smp)?;
                if let Some(jitter) = bus_jitter {
                    system.set_bus_jitter(Some(jitter))?;
                }
                Ok(TransferEngine::new_smp(
                    MachineId::Dec8400,
                    system,
                    0x8400,
                    limits,
                ))
            }
            SpecKind::T3d {
                node,
                remote,
                ni_loss,
            } => {
                let engine = MemoryEngine::try_new(node.clone())?;
                let ni = T3dNi::new(remote.ni.clone())?;
                let link = Link::new(remote.link.clone())?;
                let dest_write = WriteBuffer::new(remote.dest_write.clone())?;
                let dest_dram = Dram::new(remote.dest_dram.clone())?;
                let remote_dram = Dram::new(node.hierarchy.dram.clone())?;
                let path = T3dRemotePath::new(remote, ni, link, dest_write, dest_dram, remote_dram);
                let mut built = TransferEngine::new_t3d(engine, path, limits);
                if let Some(loss) = ni_loss {
                    built.set_ni_loss(NiLossModel::new(loss)?);
                }
                Ok(built)
            }
            SpecKind::T3e {
                node,
                remote,
                ni_loss,
            } => {
                let engine = MemoryEngine::try_new(node)?;
                let eregs = ERegisters::new(remote.eregs.clone())?;
                let link = Link::new(remote.link.clone())?;
                let dest_banks = Dram::new(remote.dest_word_banks.clone())?;
                let mut built =
                    TransferEngine::new_t3e(engine, remote, eregs, link, dest_banks, limits);
                if let Some(loss) = ni_loss {
                    built.set_ni_loss(NiLossModel::new(loss)?);
                }
                Ok(built)
            }
            SpecKind::Custom { name, node } => {
                let engine = MemoryEngine::try_new(node)?;
                Ok(TransferEngine::new_custom(name, engine, limits))
            }
        }
    }
}

/// A thread-shareable factory of independent probe engines.
///
/// The sweep layer is generic over this: each grid cell spawns its own
/// engine, so cells need no synchronization and can run on any thread.
/// Because every probe starts by flushing all mutable state, a fresh engine
/// measures exactly what a reused one would — parallel results are
/// bit-identical to sequential ones.
pub trait SpawnEngine: Sync {
    /// The engine type this factory produces.
    type Engine: Machine + Send;

    /// Builds one independent engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the underlying description is invalid.
    fn spawn_engine(&self) -> Result<Self::Engine, SimError>;
}

impl SpawnEngine for MachineSpec {
    type Engine = TransferEngine;

    fn spawn_engine(&self) -> Result<TransferEngine, SimError> {
        Ok(self.clone().build()?)
    }
}

/// Any `Sync` closure producing a machine is a factory; this keeps ad-hoc
/// uses (tests, custom wrappers) free of boilerplate.
impl<F, M> SpawnEngine for F
where
    F: Fn() -> M + Sync,
    M: Machine + Send,
{
    type Engine = M;

    fn spawn_engine(&self) -> Result<M, SimError> {
        Ok(self())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_send_sync_and_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<MachineSpec>();
    }

    #[test]
    fn for_id_covers_every_label() {
        for id in [
            MachineId::Dec8400,
            MachineId::CrayT3d,
            MachineId::CrayT3e,
            MachineId::Custom,
        ] {
            let spec = MachineSpec::for_id(id);
            assert_eq!(spec.id(), id);
            let engine = spec.build().expect("paper parameters must validate");
            assert_eq!(engine.id(), id);
        }
    }

    #[test]
    fn spawned_engines_match_probes_of_wrapper_machines() {
        use crate::{Machine, T3d};
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut spawned = spec.spawn_engine().unwrap();
        let mut wrapper = T3d::new();
        wrapper.set_limits(MeasureLimits::fast());
        let a = spawned.remote_deposit(1 << 20, 16).unwrap();
        let b = wrapper.remote_deposit(1 << 20, 16).unwrap();
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
        let a = spawned.local_load(1 << 20, 2);
        let b = wrapper.local_load(1 << 20, 2);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    }

    #[test]
    fn faults_on_custom_specs_are_unsupported() {
        let plan = FaultPlan::new(1, 0.5).unwrap();
        let spec = MachineSpec::for_id(MachineId::Custom);
        assert!(spec.with_faults(&plan).is_err());
    }

    #[test]
    fn fault_plans_fold_into_the_spec_deterministically() {
        let plan = FaultPlan::new(7, 0.6).unwrap();
        let a = MachineSpec::t3d()
            .with_faults(&plan)
            .unwrap()
            .with_limits(MeasureLimits::fast());
        let b = MachineSpec::t3d()
            .with_faults(&plan)
            .unwrap()
            .with_limits(MeasureLimits::fast());
        let ma = a
            .spawn_engine()
            .unwrap()
            .remote_deposit(1 << 20, 8)
            .unwrap();
        let mb = b
            .spawn_engine()
            .unwrap()
            .remote_deposit(1 << 20, 8)
            .unwrap();
        assert_eq!(ma.cycles.to_bits(), mb.cycles.to_bits());
    }

    #[test]
    fn closures_are_spawners() {
        fn takes_spawner<S: SpawnEngine>(s: &S) -> MachineId {
            s.spawn_engine().unwrap().id()
        }
        let spawner = || {
            let mut m = crate::T3e::new();
            m.set_limits(MeasureLimits::fast());
            m
        };
        assert_eq!(takes_spawner(&spawner), MachineId::CrayT3e);
    }
}
