//! Cooperative cancellation for long-running probes.
//!
//! A characterization sweep hands every grid cell a wall-clock budget: a
//! pathological cell (huge working set on a degraded machine, a buggy
//! experimental model stuck in a loop) must degrade to an explicit hole in
//! the surface, not hang the whole run. Probes cannot be interrupted from
//! outside without poisoning shared state, so cancellation is cooperative:
//!
//! * the sweep layer creates a [`CancelToken`] per cell (usually with a
//!   deadline) and installs it on the engine via
//!   [`crate::machine::Machine::set_cancel_token`];
//! * the probe loops consult the token every [`CHECK_INTERVAL`] simulated
//!   words — [`Guarded`] does this for the iterator-driven local passes,
//!   the remote inner loops check inline;
//! * a cancelled token makes the probe panic with the [`CellCancelled`]
//!   marker payload, which the resilient sweep runner catches with
//!   `catch_unwind` and records as a *timeout* (distinct from a genuine
//!   panic), leaving the engine to be dropped — per-cell engines make this
//!   safe.
//!
//! Checking wall clocks every word would distort nothing (costs are
//! simulated cycles, not real time) but would be slow; batching the check
//! keeps the unobserved overhead to one decrement per word.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many iterator items pass between deadline checks.
pub const CHECK_INTERVAL: u32 = 4096;

/// The panic payload a cancelled probe unwinds with.
///
/// Catchers downcast to this to distinguish a cooperative timeout from a
/// real assertion failure inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCancelled;

/// A cloneable cancellation token: an explicit flag plus an optional
/// wall-clock deadline fixed at construction.
///
/// Clones share the flag (an `Arc<AtomicBool>`), so cancelling any clone
/// cancels them all; the deadline is per-token data copied on clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally cancels once `budget` wall-clock time has
    /// elapsed from now. A zero budget is already expired — useful for
    /// deterministic tests.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// A child token sharing this token's flag, with its deadline capped at
    /// `budget` from now (the tighter of the two deadlines wins). The sweep
    /// layer derives one per cell from the run-wide token, so cancelling
    /// the run cancels every cell while each cell also has its own budget.
    pub fn child_with_deadline(&self, budget: Duration) -> CancelToken {
        let cell = Instant::now() + budget;
        CancelToken {
            flag: self.flag.clone(),
            deadline: Some(self.deadline.map_or(cell, |run| run.min(cell))),
        }
    }

    /// Cancels this token (and every clone sharing its flag).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is set or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Panics with [`CellCancelled`] when the token is cancelled.
    pub fn bail_if_cancelled(&self) {
        if self.is_cancelled() {
            // resume_unwind skips the panic hook: a cooperative timeout is
            // an expected control-flow event, not a bug to report.
            std::panic::resume_unwind(Box::new(CellCancelled));
        }
    }
}

/// An iterator adapter checking a [`CancelToken`] every
/// [`CHECK_INTERVAL`] items.
///
/// With no token installed the per-item cost is one decrement and one
/// branch; the wall clock is only read at the batch boundary.
#[derive(Debug)]
pub struct Guarded<I> {
    inner: I,
    token: Option<CancelToken>,
    countdown: u32,
}

impl<I> Guarded<I> {
    /// Wraps `inner`; a `None` token disables all checking.
    pub fn new(inner: I, token: Option<CancelToken>) -> Self {
        Guarded {
            inner,
            token,
            countdown: CHECK_INTERVAL,
        }
    }
}

impl<I: Iterator> Iterator for Guarded<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = CHECK_INTERVAL;
            if let Some(token) = &self.token {
                token.bail_if_cancelled();
            }
        }
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fresh_tokens_are_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.bail_if_cancelled(); // must not panic
    }

    #[test]
    fn cancel_reaches_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_immediately_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let err = catch_unwind(AssertUnwindSafe(|| t.bail_if_cancelled()))
            .expect_err("an expired token must bail");
        assert!(err.downcast_ref::<CellCancelled>().is_some());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn guarded_passes_items_through_untouched() {
        let items: Vec<u32> = Guarded::new(0..10u32, None).collect();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
        let t = CancelToken::new();
        let items: Vec<u32> = Guarded::new(0..10u32, Some(t)).collect();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn guarded_bails_at_the_batch_boundary() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        let err = catch_unwind(AssertUnwindSafe(|| {
            Guarded::new(0..u32::MAX, Some(t)).count()
        }))
        .expect_err("an expired token must stop the iterator");
        assert!(err.downcast_ref::<CellCancelled>().is_some());
    }

    #[test]
    fn tokens_are_send_and_clone() {
        fn assert_send<T: Send + Clone>() {}
        assert_send::<CancelToken>();
    }
}
