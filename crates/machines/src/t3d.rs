//! The Cray T3D model.
//!
//! A 150 MHz 21064 PE with only an 8 KB on-chip L1, external read-ahead
//! logic, a coalescing write-back queue, and ECL fetch/deposit circuitry on
//! a 3D torus (§3.2). Remote stores are "directly captured from the write
//! back queues" and coalesced into 32-byte packets; remote loads either
//! block for a full network round trip or pipeline through an external
//! prefetch FIFO.

use gasnub_faults::FaultPlan;
use gasnub_interconnect::link::Link;
use gasnub_interconnect::ni::{NiLossModel, T3dNi};
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::trace::{CopyPass, StorePass, StridedOrder, StridedPass};
use gasnub_memsim::write_buffer::WriteBuffer;
use gasnub_memsim::WORD_BYTES;

use crate::limits::MeasureLimits;
use crate::machine::{Machine, MachineId, Measurement};
use crate::params::{self, T3dRemoteParams};

/// Byte offset separating source and destination regions.
const DST_REGION: u64 = 1 << 32;

/// Destination PE number used for partner-switch accounting.
const DEST_PE: u32 = 2;

/// The Cray T3D machine model (one active PE plus the remote paths).
#[derive(Debug)]
pub struct T3d {
    engine: MemoryEngine,
    remote: T3dRemoteParams,
    ni: T3dNi,
    link: Link,
    /// Destination-side write path driven by the deposit circuitry:
    /// coalescing window per the WBQ shape, service time from the
    /// destination DRAM's row state (large-stride deposits reopen a row
    /// per word).
    dest_write: WriteBuffer,
    dest_dram: Dram,
    dest_busy_until: f64,
    /// Remote source DRAM as read by the fetch circuitry.
    remote_dram: Dram,
    limits: MeasureLimits,
}

impl T3d {
    /// Builds the paper's T3D PE with default limits.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in parameter table is inconsistent (a bug).
    pub fn new() -> Self {
        Self::with_params(params::t3d_node(), params::t3d_remote())
            .expect("built-in T3D parameters must validate")
    }

    /// Builds a T3D variant from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error.
    pub fn with_params(
        node: gasnub_memsim::NodeConfig,
        remote: T3dRemoteParams,
    ) -> Result<Self, gasnub_memsim::ConfigError> {
        let engine = MemoryEngine::try_new(node.clone())?;
        let ni = T3dNi::new(remote.ni.clone())?;
        let link = Link::new(remote.link.clone())?;
        let dest_write = WriteBuffer::new(remote.dest_write.clone())?;
        let dest_dram = Dram::new(remote.dest_dram.clone())?;
        let remote_dram = Dram::new(node.hierarchy.dram.clone())?;
        Ok(T3d {
            engine,
            remote,
            ni,
            link,
            dest_write,
            dest_dram,
            dest_busy_until: 0.0,
            remote_dram,
            limits: MeasureLimits::new(),
        })
    }

    /// The T3D ablation with the external read-ahead logic disabled
    /// ("can be turned on/off at program load time", §3.2).
    pub fn new_without_read_ahead() -> Self {
        let mut node = params::t3d_node();
        node.hierarchy.dram_stream = None;
        Self::with_params(node, params::t3d_remote()).expect("ablation parameters must validate")
    }

    /// The T3D ablation with write-buffer coalescing disabled.
    pub fn new_without_coalescing() -> Self {
        let mut node = params::t3d_node();
        if let Some(wb) = &mut node.hierarchy.write_buffer {
            wb.coalesce = false;
        }
        let mut remote = params::t3d_remote();
        remote.dest_write.coalesce = false;
        Self::with_params(node, remote).expect("ablation parameters must validate")
    }

    /// The footnote-1 variant where both PEs of the node pair communicate
    /// simultaneously: per-PE link bandwidth halves (≈ 70 MB/s each).
    pub fn new_with_paired_traffic() -> Self {
        let mut remote = params::t3d_remote();
        // Both the link payload rate and the shared NI's injection port are
        // split between the pair.
        remote.link.cycles_per_byte *= 2.0;
        remote.ni.message.per_message_cycles *= 2.0;
        remote.ni.message.per_byte_cycles *= 2.0;
        Self::with_params(params::t3d_node(), remote).expect("paired-traffic parameters must validate")
    }

    /// Builds a T3D degraded by `plan`: the remote path detours around the
    /// plan's failed torus channels (more hops, bottleneck capacity scales
    /// the per-byte link rate) and the NI retries lost messages with
    /// exponential-backoff timeouts. Same plan, same cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`gasnub_memsim::SimError`] when the plan disconnects the
    /// canonical remote pair or a derived configuration fails validation.
    pub fn with_faults(plan: &FaultPlan) -> Result<Self, gasnub_memsim::SimError> {
        let impact = plan.remote_impact()?;
        let mut remote = params::t3d_remote();
        remote.hops = impact.hops.max(remote.hops);
        remote.link.cycles_per_byte *= impact.per_byte_scale();
        let mut t3d = Self::with_params(params::t3d_node(), remote)?;
        t3d.ni.set_loss_model(Some(NiLossModel::new(plan.ni_loss())?));
        Ok(t3d)
    }

    /// The blocking-fetch variant (prefetch FIFO unused): "remote loads can
    /// be performed in a transparent blocking manner at minimal speed".
    pub fn new_with_blocking_fetch() -> Self {
        let mut remote = params::t3d_remote();
        remote.ni.prefetch_fifo_depth = 1;
        Self::with_params(params::t3d_node(), remote).expect("blocking-fetch parameters must validate")
    }

    fn clock(&self) -> f64 {
        self.engine.cpu().clock_mhz
    }

    fn words_of(ws_bytes: u64) -> u64 {
        (ws_bytes / WORD_BYTES).max(1)
    }

    fn reset_remote_paths(&mut self) {
        self.ni.reset();
        self.link.reset();
        self.dest_write.reset();
        self.dest_dram.reset();
        self.dest_busy_until = 0.0;
        self.remote_dram.reset();
    }

    /// Runs a deposit transfer: contiguous local loads feed strided remote
    /// stores, coalesced into packets by the write-back queue and injected
    /// by the NI.
    fn run_deposit(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        self.reset_remote_paths();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);

        // Prime the source region so cache effects along the working-set
        // axis match the paper's methodology.
        let prime = StridedPass::new(0, words, 1).take(self.limits.prime_words(words) as usize);
        let _ = self.engine.run_trace(prime);

        let cpu = self.engine.cpu().clone();
        let window = self.remote.dest_write.entry_bytes;
        let header = self.remote.header_bytes;
        let hops = self.remote.hops;
        let coalesce = self.remote.dest_write.coalesce;

        let mut now = self.engine.now();
        let start = now;
        let mut open_window: Option<u64> = None;
        let mut open_bytes: u64 = 0;

        for (k, idx) in StridedOrder::new(words, stride).take(measured as usize).enumerate() {
            // Contiguous local load of the outgoing word.
            let local_addr = k as u64 * WORD_BYTES;
            let load = self.engine.hierarchy_mut().load(local_addr, now);
            now += cpu.load_issue_cycles + cpu.loop_overhead_cycles + load.cycles;

            // Remote store: coalesce into packets of `window` bytes.
            let remote_addr = DST_REGION + idx * WORD_BYTES;
            now += cpu.store_issue_cycles;
            let this_window = remote_addr / window;
            let coalesced = coalesce && open_window == Some(this_window);
            if coalesced {
                open_bytes += WORD_BYTES;
            } else {
                if open_window.is_some() {
                    now += self.flush_packet(open_bytes + header, hops, now);
                }
                open_window = Some(this_window);
                open_bytes = WORD_BYTES;
                // The deposit circuitry writes one entity into destination
                // DRAM per window; page-mode keeps low-stride deposits
                // cheap, but each large-stride word reopens a row. A busy
                // destination back-pressures the sender.
                let stall = (self.dest_busy_until - now).max(0.0);
                let service = self.dest_dram.access(remote_addr, now + stall).cycles;
                self.dest_busy_until = now + stall + service;
                now += stall;
            }
        }
        if open_window.is_some() {
            now += self.flush_packet(open_bytes + header, hops, now);
        }
        now = now.max(self.dest_busy_until);
        Measurement::new(measured * WORD_BYTES, now - start, self.clock())
    }

    /// Injects one packet; the sender observes injection cost plus link
    /// back-pressure (transfer itself is fire-and-forget).
    fn flush_packet(&mut self, wire_bytes: u64, hops: u32, now: f64) -> f64 {
        let inject = self.ni.deposit_packet(wire_bytes, DEST_PE);
        let link_total = self.link.send(wire_bytes, hops, now + inject);
        let link_occupancy = self.link.config().transfer_cycles(wire_bytes, hops);
        let link_stall = (link_total - link_occupancy).max(0.0);
        inject + link_stall
    }

    /// Runs a fetch transfer: strided remote loads through the prefetch
    /// FIFO, contiguous local stores through the write-back queue.
    fn run_fetch(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        self.reset_remote_paths();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);
        let cpu = self.engine.cpu().clone();
        let row_hit = self.remote_dram.config().row_hit_cycles;

        let mut now = self.engine.now();
        let start = now;
        for (k, idx) in StridedOrder::new(words, stride).take(measured as usize).enumerate() {
            let remote_addr = idx * WORD_BYTES;
            // Remote load through the FIFO (round trip amortized by depth).
            now += self.ni.fetch_word(now);
            // Extra penalty when the remote DRAM row must be reopened.
            let dram = self.remote_dram.access(remote_addr, now);
            now += (dram.cycles - row_hit).max(0.0) + dram.bank_stall_cycles;
            // Contiguous local store of the fetched word.
            let local_addr = DST_REGION + k as u64 * WORD_BYTES;
            let store = self.engine.hierarchy_mut().store(local_addr, now);
            now += cpu.store_issue_cycles + cpu.loop_overhead_cycles + store.cycles;
        }
        now += self.engine.hierarchy_mut().drain_writes(now);
        Measurement::new(measured * WORD_BYTES, now - start, self.clock())
    }
}

impl Default for T3d {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine for T3d {
    fn id(&self) -> MachineId {
        MachineId::CrayT3d
    }

    fn clock_mhz(&self) -> f64 {
        self.clock()
    }

    fn limits(&self) -> MeasureLimits {
        self.limits
    }

    fn set_limits(&mut self, limits: MeasureLimits) {
        self.limits = limits;
    }

    fn local_load(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let prime = StridedPass::new(0, words, stride).take(self.limits.prime_words(words) as usize);
        let measured = self.limits.measure_words(words);
        let measure = StridedPass::new(0, words, stride).take(measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn local_store(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let prime = StorePass::new(0, words, stride).take(self.limits.prime_words(words) as usize);
        let measured = self.limits.measure_words(words);
        let measure = StorePass::new(0, words, stride).take(measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn local_copy(&mut self, ws_bytes: u64, load_stride: u64, store_stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);
        let prime = CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
            .take(2 * self.limits.prime_words(words) as usize);
        let measure = CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
            .take(2 * measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(measured * WORD_BYTES, stats.cycles, self.clock())
    }

    fn local_gather(&mut self, ws_bytes: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);
        let prime = StridedPass::new(0, words, 1).take(self.limits.prime_words(words) as usize);
        let indices = gasnub_memsim::trace::shuffled_indices(words, measured as usize, 0x73d);
        let measure = gasnub_memsim::trace::IndexedPass::new(0, indices);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn remote_load(&mut self, _ws_bytes: u64, _stride: u64) -> Option<Measurement> {
        // Pure remote loads without a local destination are not one of the
        // paper's T3D benchmarks (fig 4 measures shmem_iget transfers).
        None
    }

    fn remote_fetch(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        Some(self.run_fetch(ws_bytes, stride))
    }

    fn remote_deposit(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        Some(self.run_deposit(ws_bytes, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;

    fn machine() -> T3d {
        let mut m = T3d::new();
        m.set_limits(MeasureLimits { max_measure_words: 16 * 1024, max_prime_words: 2 * 1024 * 1024 });
        m
    }

    #[test]
    fn l1_plateau_near_600() {
        let m = machine().local_load(4 * KB, 1);
        assert!((m.mb_s - 600.0).abs() / 600.0 < 0.15, "L1: got {}", m.mb_s);
    }

    #[test]
    fn dram_contiguous_near_195() {
        let m = machine().local_load(8 * MB, 1);
        assert!((m.mb_s - 195.0).abs() / 195.0 < 0.2, "DRAM contig: got {}", m.mb_s);
    }

    #[test]
    fn dram_strided_near_43() {
        let m = machine().local_load(8 * MB, 16);
        assert!((m.mb_s - 43.0).abs() / 43.0 < 0.3, "DRAM strided: got {}", m.mb_s);
    }

    #[test]
    fn contiguous_dram_beats_dec8400_by_30_percent() {
        // §5.3: "Contiguous loads from local DRAM memory on the Cray T3D are
        // about 30% faster than in the DEC 8400."
        let t3d = machine().local_load(8 * MB, 1).mb_s;
        let mut dec = crate::Dec8400::new();
        dec.set_limits(MeasureLimits { max_measure_words: 16 * 1024, max_prime_words: 2 * 1024 * 1024 });
        let dec_bw = dec.local_load(32 * MB, 1).mb_s;
        let ratio = t3d / dec_bw;
        assert!(ratio > 1.1 && ratio < 1.6, "T3D/8400 contiguous DRAM ratio {ratio}");
    }

    #[test]
    fn read_ahead_ablation_loses_the_edge() {
        let with = machine().local_load(8 * MB, 1).mb_s;
        let mut without = T3d::new_without_read_ahead();
        without.set_limits(machine().limits());
        let wo = without.local_load(8 * MB, 1).mb_s;
        assert!(with / wo > 1.2, "read-ahead must matter: {with} vs {wo}");
    }

    #[test]
    fn local_copy_contiguous_near_100() {
        let m = machine().local_copy(8 * MB, 1, 1);
        assert!((m.mb_s - 100.0).abs() / 100.0 < 0.25, "copy contig: got {}", m.mb_s);
    }

    #[test]
    fn strided_stores_beat_strided_loads_locally() {
        // Fig 10: the write-back queue makes contiguous-load/strided-store
        // copies (~70 MB/s) much faster than strided-load/contiguous-store
        // copies (~40 MB/s).
        let mut mach = machine();
        let strided_stores = mach.local_copy(8 * MB, 1, 16).mb_s;
        let strided_loads = mach.local_copy(8 * MB, 16, 1).mb_s;
        assert!(
            strided_stores > 1.3 * strided_loads,
            "strided stores {strided_stores} vs strided loads {strided_loads}"
        );
        assert!((strided_stores - 70.0).abs() / 70.0 < 0.3, "got {strided_stores}");
    }

    #[test]
    fn deposit_contiguous_near_120() {
        let m = machine().remote_deposit(8 * MB, 1).unwrap();
        assert!((m.mb_s - 120.0).abs() / 120.0 < 0.25, "deposit contig: got {}", m.mb_s);
    }

    #[test]
    fn deposit_strided_near_60() {
        let m = machine().remote_deposit(8 * MB, 16).unwrap();
        assert!(m.mb_s > 45.0 && m.mb_s < 80.0, "deposit strided: got {}", m.mb_s);
    }

    #[test]
    fn fetch_is_much_slower_than_deposit() {
        // §5.4: deposits preferred; naive remote loads are an order of
        // magnitude below the network bandwidth.
        let mut mach = machine();
        let deposit = mach.remote_deposit(8 * MB, 1).unwrap().mb_s;
        let fetch = mach.remote_fetch(8 * MB, 1).unwrap().mb_s;
        assert!(deposit > 3.0 * fetch, "deposit {deposit} vs fetch {fetch}");
        assert!(fetch > 15.0 && fetch < 40.0, "fetch: got {fetch}");
    }

    #[test]
    fn blocking_fetch_is_worse_than_fifo_fetch() {
        let mut fifo = machine();
        let mut blocking = T3d::new_with_blocking_fetch();
        blocking.set_limits(fifo.limits());
        let f = fifo.remote_fetch(MB, 1).unwrap().mb_s;
        let b = blocking.remote_fetch(MB, 1).unwrap().mb_s;
        assert!(f > 2.0 * b, "FIFO {f} vs blocking {b}");
    }

    #[test]
    fn coalescing_ablation_hurts_contiguous_deposits() {
        let mut with = machine();
        let mut without = T3d::new_without_coalescing();
        without.set_limits(with.limits());
        let w = with.remote_deposit(MB, 1).unwrap().mb_s;
        let wo = without.remote_deposit(MB, 1).unwrap().mb_s;
        assert!(w > 1.3 * wo, "coalescing must matter: {w} vs {wo}");
    }

    #[test]
    fn paired_traffic_halves_link_bandwidth_effect() {
        let mut single = machine();
        let mut paired = T3d::new_with_paired_traffic();
        paired.set_limits(single.limits());
        let s = single.remote_deposit(MB, 1).unwrap().mb_s;
        let p = paired.remote_deposit(MB, 1).unwrap().mb_s;
        assert!(p < s, "paired traffic must reduce deposit bandwidth: {p} vs {s}");
    }
}
