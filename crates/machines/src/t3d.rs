//! The Cray T3D model.
//!
//! A 150 MHz 21064 PE with only an 8 KB on-chip L1, external read-ahead
//! logic, a coalescing write-back queue, and ECL fetch/deposit circuitry on
//! a 3D torus (§3.2). Remote stores are "directly captured from the write
//! back queues" and coalesced into 32-byte packets; remote loads either
//! block for a full network round trip or pipeline through an external
//! prefetch FIFO.
//!
//! The probe loops live in [`crate::engine::TransferEngine`]; this type is
//! a thin shell that keeps the calibrated constructors and ablations.

use gasnub_faults::FaultPlan;

use crate::engine::{delegate_machine, TransferEngine};
use crate::params::{self, T3dRemoteParams};
use crate::spec::MachineSpec;

/// The Cray T3D machine model (one active PE plus the remote paths).
#[derive(Debug)]
pub struct T3d {
    engine: TransferEngine,
}

impl T3d {
    /// Builds the paper's T3D PE with default limits.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in parameter table is inconsistent (a bug).
    pub fn new() -> Self {
        Self::with_params(params::t3d_node(), params::t3d_remote())
            .expect("built-in T3D parameters must validate")
    }

    /// Builds a T3D variant from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error.
    pub fn with_params(
        node: gasnub_memsim::NodeConfig,
        remote: T3dRemoteParams,
    ) -> Result<Self, gasnub_memsim::ConfigError> {
        Ok(T3d {
            engine: MachineSpec::t3d_with(node, remote).build()?,
        })
    }

    /// The T3D ablation with the external read-ahead logic disabled
    /// ("can be turned on/off at program load time", §3.2).
    pub fn new_without_read_ahead() -> Self {
        let mut node = params::t3d_node();
        node.hierarchy.dram_stream = None;
        Self::with_params(node, params::t3d_remote()).expect("ablation parameters must validate")
    }

    /// The T3D ablation with write-buffer coalescing disabled.
    pub fn new_without_coalescing() -> Self {
        let mut node = params::t3d_node();
        if let Some(wb) = &mut node.hierarchy.write_buffer {
            wb.coalesce = false;
        }
        let mut remote = params::t3d_remote();
        remote.dest_write.coalesce = false;
        Self::with_params(node, remote).expect("ablation parameters must validate")
    }

    /// The footnote-1 variant where both PEs of the node pair communicate
    /// simultaneously: per-PE link bandwidth halves (≈ 70 MB/s each).
    pub fn new_with_paired_traffic() -> Self {
        let mut remote = params::t3d_remote();
        // Both the link payload rate and the shared NI's injection port are
        // split between the pair.
        remote.link.cycles_per_byte *= 2.0;
        remote.ni.message.per_message_cycles *= 2.0;
        remote.ni.message.per_byte_cycles *= 2.0;
        Self::with_params(params::t3d_node(), remote)
            .expect("paired-traffic parameters must validate")
    }

    /// Builds a T3D degraded by `plan`: the remote path detours around the
    /// plan's failed torus channels (more hops, bottleneck capacity scales
    /// the per-byte link rate) and the NI retries lost messages with
    /// exponential-backoff timeouts. Same plan, same cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`gasnub_memsim::SimError`] when the plan disconnects the
    /// canonical remote pair or a derived configuration fails validation.
    pub fn with_faults(plan: &FaultPlan) -> Result<Self, gasnub_memsim::SimError> {
        Ok(T3d {
            engine: MachineSpec::t3d().with_faults(plan)?.build()?,
        })
    }

    /// The blocking-fetch variant (prefetch FIFO unused): "remote loads can
    /// be performed in a transparent blocking manner at minimal speed".
    pub fn new_with_blocking_fetch() -> Self {
        let mut remote = params::t3d_remote();
        remote.ni.prefetch_fifo_depth = 1;
        Self::with_params(params::t3d_node(), remote)
            .expect("blocking-fetch parameters must validate")
    }
}

impl Default for T3d {
    fn default() -> Self {
        Self::new()
    }
}

delegate_machine!(T3d);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::MeasureLimits;
    use crate::machine::Machine;

    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;

    fn machine() -> T3d {
        let mut m = T3d::new();
        m.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        });
        m
    }

    #[test]
    fn l1_plateau_near_600() {
        let m = machine().local_load(4 * KB, 1);
        assert!((m.mb_s - 600.0).abs() / 600.0 < 0.15, "L1: got {}", m.mb_s);
    }

    #[test]
    fn dram_contiguous_near_195() {
        let m = machine().local_load(8 * MB, 1);
        assert!(
            (m.mb_s - 195.0).abs() / 195.0 < 0.2,
            "DRAM contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn dram_strided_near_43() {
        let m = machine().local_load(8 * MB, 16);
        assert!(
            (m.mb_s - 43.0).abs() / 43.0 < 0.3,
            "DRAM strided: got {}",
            m.mb_s
        );
    }

    #[test]
    fn contiguous_dram_beats_dec8400_by_30_percent() {
        // §5.3: "Contiguous loads from local DRAM memory on the Cray T3D are
        // about 30% faster than in the DEC 8400."
        let t3d = machine().local_load(8 * MB, 1).mb_s;
        let mut dec = crate::Dec8400::new();
        dec.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        });
        let dec_bw = dec.local_load(32 * MB, 1).mb_s;
        let ratio = t3d / dec_bw;
        assert!(
            ratio > 1.1 && ratio < 1.6,
            "T3D/8400 contiguous DRAM ratio {ratio}"
        );
    }

    #[test]
    fn read_ahead_ablation_loses_the_edge() {
        let with = machine().local_load(8 * MB, 1).mb_s;
        let mut without = T3d::new_without_read_ahead();
        without.set_limits(machine().limits());
        let wo = without.local_load(8 * MB, 1).mb_s;
        assert!(with / wo > 1.2, "read-ahead must matter: {with} vs {wo}");
    }

    #[test]
    fn local_copy_contiguous_near_100() {
        let m = machine().local_copy(8 * MB, 1, 1);
        assert!(
            (m.mb_s - 100.0).abs() / 100.0 < 0.25,
            "copy contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn strided_stores_beat_strided_loads_locally() {
        // Fig 10: the write-back queue makes contiguous-load/strided-store
        // copies (~70 MB/s) much faster than strided-load/contiguous-store
        // copies (~40 MB/s).
        let mut mach = machine();
        let strided_stores = mach.local_copy(8 * MB, 1, 16).mb_s;
        let strided_loads = mach.local_copy(8 * MB, 16, 1).mb_s;
        assert!(
            strided_stores > 1.3 * strided_loads,
            "strided stores {strided_stores} vs strided loads {strided_loads}"
        );
        assert!(
            (strided_stores - 70.0).abs() / 70.0 < 0.3,
            "got {strided_stores}"
        );
    }

    #[test]
    fn deposit_contiguous_near_120() {
        let m = machine().remote_deposit(8 * MB, 1).unwrap();
        assert!(
            (m.mb_s - 120.0).abs() / 120.0 < 0.25,
            "deposit contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn deposit_strided_near_60() {
        let m = machine().remote_deposit(8 * MB, 16).unwrap();
        assert!(
            m.mb_s > 45.0 && m.mb_s < 80.0,
            "deposit strided: got {}",
            m.mb_s
        );
    }

    #[test]
    fn fetch_is_much_slower_than_deposit() {
        // §5.4: deposits preferred; naive remote loads are an order of
        // magnitude below the network bandwidth.
        let mut mach = machine();
        let deposit = mach.remote_deposit(8 * MB, 1).unwrap().mb_s;
        let fetch = mach.remote_fetch(8 * MB, 1).unwrap().mb_s;
        assert!(deposit > 3.0 * fetch, "deposit {deposit} vs fetch {fetch}");
        assert!(fetch > 15.0 && fetch < 40.0, "fetch: got {fetch}");
    }

    #[test]
    fn blocking_fetch_is_worse_than_fifo_fetch() {
        let mut fifo = machine();
        let mut blocking = T3d::new_with_blocking_fetch();
        blocking.set_limits(fifo.limits());
        let f = fifo.remote_fetch(MB, 1).unwrap().mb_s;
        let b = blocking.remote_fetch(MB, 1).unwrap().mb_s;
        assert!(f > 2.0 * b, "FIFO {f} vs blocking {b}");
    }

    #[test]
    fn coalescing_ablation_hurts_contiguous_deposits() {
        let mut with = machine();
        let mut without = T3d::new_without_coalescing();
        without.set_limits(with.limits());
        let w = with.remote_deposit(MB, 1).unwrap().mb_s;
        let wo = without.remote_deposit(MB, 1).unwrap().mb_s;
        assert!(w > 1.3 * wo, "coalescing must matter: {w} vs {wo}");
    }

    #[test]
    fn paired_traffic_halves_link_bandwidth_effect() {
        let mut single = machine();
        let mut paired = T3d::new_with_paired_traffic();
        paired.set_limits(single.limits());
        let s = single.remote_deposit(MB, 1).unwrap().mb_s;
        let p = paired.remote_deposit(MB, 1).unwrap().mb_s;
        assert!(
            p < s,
            "paired traffic must reduce deposit bandwidth: {p} vs {s}"
        );
    }
}
