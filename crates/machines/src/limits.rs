//! Measurement limits: how much of a working set is actually simulated.
//!
//! The paper's sweeps reach 128 MB working sets. Simulating every word of
//! every cell would cost billions of trace events without changing any
//! steady-state bandwidth, so benchmarks cap the *simulated* prefix of each
//! pass. The caps are chosen so that (a) priming still fills the largest
//! cache completely and (b) the measured prefix runs long enough to reach
//! steady state. Results remain deterministic.

/// Caps on the simulated portion of a benchmark pass (in 64-bit words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureLimits {
    /// Maximum words simulated in the measured pass.
    pub max_measure_words: u64,
    /// Maximum words simulated in the priming pass. Must comfortably exceed
    /// the largest cache in the machine (the 8400's 4 MB L3 = 512 Ki words).
    pub max_prime_words: u64,
}

impl MeasureLimits {
    /// Default limits: measure ≤ 256 Ki words (2 MB), prime ≤ 2 Mi words
    /// (16 MB) — 4x the largest cache in any modelled machine.
    pub fn new() -> Self {
        MeasureLimits {
            max_measure_words: 256 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        }
    }

    /// Small limits for fast unit tests (measure ≤ 32 Ki words, prime ≤
    /// 1 Mi words = 8 MB). The prime cap still covers the largest modelled
    /// cache (the 8400's 4 MB L3) with room to evict the measured region.
    pub fn fast() -> Self {
        MeasureLimits {
            max_measure_words: 32 * 1024,
            max_prime_words: 1024 * 1024,
        }
    }

    /// Words actually simulated in the measured pass for a working set of
    /// `ws_words`.
    pub fn measure_words(&self, ws_words: u64) -> u64 {
        ws_words.min(self.max_measure_words)
    }

    /// Words actually simulated in the priming pass.
    pub fn prime_words(&self, ws_words: u64) -> u64 {
        ws_words.min(self.max_prime_words)
    }
}

impl Default for MeasureLimits {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_apply_only_above_threshold() {
        let l = MeasureLimits::new();
        assert_eq!(l.measure_words(100), 100);
        assert_eq!(l.measure_words(u64::MAX), l.max_measure_words);
        assert_eq!(l.prime_words(100), 100);
        assert_eq!(l.prime_words(u64::MAX), l.max_prime_words);
    }

    #[test]
    fn prime_cap_exceeds_largest_cache() {
        // The 8400 L3 is 4 MB = 512 Ki words; priming must cover it.
        assert!(MeasureLimits::new().max_prime_words >= 4 * 512 * 1024 / 4);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(MeasureLimits::default(), MeasureLimits::new());
    }
}
