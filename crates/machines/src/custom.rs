//! User-defined machines: characterize your own node design.
//!
//! The three historical machines are fixed, but the methodology is not —
//! the paper's closing argument is that memory-system models "can no longer
//! be derived from the data sheets … but require measurements of micro
//! benchmarks" (§9). [`CustomMachine`] lets a user describe any node
//! (caches, DRAM, stream units, write buffers) and run the same
//! characterization the paper ran, including sweeps and the cost model's
//! local strategies.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_machines::custom::CustomMachineBuilder;
//! use gasnub_machines::{Machine, MeasureLimits};
//! use gasnub_memsim::config::presets;
//!
//! let mut machine = CustomMachineBuilder::new("my node", presets::tiny_test_node())
//!     .build()?;
//! machine.set_limits(MeasureLimits::fast());
//! let m = machine.local_load(64 * 1024, 1);
//! assert!(m.mb_s > 0.0);
//! # Ok::<(), gasnub_memsim::ConfigError>(())
//! ```

use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::trace::{shuffled_indices, CopyPass, IndexedPass, StorePass, StridedPass};
use gasnub_memsim::{ConfigError, WORD_BYTES};

use crate::limits::MeasureLimits;
use crate::machine::{Machine, MachineId, Measurement};

/// Byte offset separating source and destination regions for copies.
const DST_REGION: u64 = 1 << 32;

/// Builder for a [`CustomMachine`].
#[derive(Debug, Clone)]
pub struct CustomMachineBuilder {
    name: String,
    node: NodeConfig,
    limits: MeasureLimits,
}

impl CustomMachineBuilder {
    /// Starts a builder from a node description.
    pub fn new(name: impl Into<String>, node: NodeConfig) -> Self {
        CustomMachineBuilder { name: name.into(), node, limits: MeasureLimits::new() }
    }

    /// Overrides the measurement caps.
    pub fn limits(mut self, limits: MeasureLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Mutable access to the node description for incremental tweaks.
    pub fn node_mut(&mut self) -> &mut NodeConfig {
        &mut self.node
    }

    /// Validates the description and builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the node description is invalid.
    pub fn build(self) -> Result<CustomMachine, ConfigError> {
        let engine = MemoryEngine::try_new(self.node)?;
        Ok(CustomMachine { name: self.name, engine, limits: self.limits })
    }
}

/// A user-defined node running the paper's local micro-benchmarks.
///
/// Remote probes return `None`: a custom machine describes one node; remote
/// paths need a full interconnect description, which the three built-in
/// machines provide.
#[derive(Debug)]
pub struct CustomMachine {
    name: String,
    engine: MemoryEngine,
    limits: MeasureLimits,
}

impl CustomMachine {
    fn clock(&self) -> f64 {
        self.engine.cpu().clock_mhz
    }

    fn words_of(ws_bytes: u64) -> u64 {
        (ws_bytes / WORD_BYTES).max(1)
    }
}

impl Machine for CustomMachine {
    fn id(&self) -> MachineId {
        MachineId::Custom
    }

    fn name(&self) -> String {
        format!("{} ({} MHz)", self.name, self.clock())
    }

    fn clock_mhz(&self) -> f64 {
        self.clock()
    }

    fn limits(&self) -> MeasureLimits {
        self.limits
    }

    fn set_limits(&mut self, limits: MeasureLimits) {
        self.limits = limits;
    }

    fn local_load(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let prime = StridedPass::new(0, words, stride).take(self.limits.prime_words(words) as usize);
        let measured = self.limits.measure_words(words);
        let measure = StridedPass::new(0, words, stride).take(measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn local_store(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let prime = StorePass::new(0, words, stride).take(self.limits.prime_words(words) as usize);
        let measured = self.limits.measure_words(words);
        let measure = StorePass::new(0, words, stride).take(measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn local_copy(&mut self, ws_bytes: u64, load_stride: u64, store_stride: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);
        let prime = CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
            .take(2 * self.limits.prime_words(words) as usize);
        let measure = CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
            .take(2 * measured as usize);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(measured * WORD_BYTES, stats.cycles, self.clock())
    }

    fn local_gather(&mut self, ws_bytes: u64) -> Measurement {
        self.engine.flush();
        let words = Self::words_of(ws_bytes);
        let measured = self.limits.measure_words(words);
        let prime = StridedPass::new(0, words, 1).take(self.limits.prime_words(words) as usize);
        let indices = shuffled_indices(words, measured as usize, 0xC05705);
        let measure = IndexedPass::new(0, indices);
        let stats = self.engine.prime_and_measure(prime, measure);
        Measurement::new(stats.bytes, stats.cycles, self.clock())
    }

    fn remote_load(&mut self, _ws_bytes: u64, _stride: u64) -> Option<Measurement> {
        None
    }

    fn remote_fetch(&mut self, _ws_bytes: u64, _stride: u64) -> Option<Measurement> {
        None
    }

    fn remote_deposit(&mut self, _ws_bytes: u64, _stride: u64) -> Option<Measurement> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_memsim::config::presets;

    fn machine() -> CustomMachine {
        CustomMachineBuilder::new("test node", presets::tiny_test_node())
            .limits(MeasureLimits::fast())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        let mut b = CustomMachineBuilder::new("bad", presets::tiny_test_node());
        b.node_mut().cpu.clock_mhz = 0.0;
        assert!(b.build().is_err());
    }

    #[test]
    fn custom_machine_has_plateaus() {
        let mut m = machine();
        let l1 = m.local_load(4 << 10, 1).mb_s;
        let dram = m.local_load(2 << 20, 1).mb_s;
        assert!(l1 > 2.0 * dram, "L1 {l1} vs DRAM {dram}");
    }

    #[test]
    fn custom_machine_sweeps_through_core_apis() {
        // A custom machine is a first-class `Machine`: the generic sweep
        // infrastructure accepts it.
        let mut m = machine();
        let probe: &mut dyn Machine = &mut m;
        assert_eq!(probe.id(), MachineId::Custom);
        assert!(probe.remote_fetch(1 << 20, 1).is_none());
        let copy = probe.local_copy(1 << 20, 1, 1);
        assert!(copy.mb_s > 0.0);
        let gather = probe.local_gather(1 << 20);
        assert!(gather.mb_s > 0.0);
    }

    #[test]
    fn name_includes_clock() {
        let m = machine();
        assert!(m.name().contains("test node"));
        assert!(m.name().contains("100"));
    }
}
