//! User-defined machines: characterize your own node design.
//!
//! The three historical machines are fixed, but the methodology is not —
//! the paper's closing argument is that memory-system models "can no longer
//! be derived from the data sheets … but require measurements of micro
//! benchmarks" (§9). [`CustomMachine`] lets a user describe any node
//! (caches, DRAM, stream units, write buffers) and run the same
//! characterization the paper ran, including sweeps and the cost model's
//! local strategies.
//!
//! The probe loops live in [`crate::engine::TransferEngine`]; this type is
//! a thin shell over a custom [`crate::spec::MachineSpec`].
//!
//! ## Example
//!
//! ```rust
//! use gasnub_machines::custom::CustomMachineBuilder;
//! use gasnub_machines::{Machine, MeasureLimits};
//! use gasnub_memsim::config::presets;
//!
//! let mut machine = CustomMachineBuilder::new("my node", presets::tiny_test_node())
//!     .build()?;
//! machine.set_limits(MeasureLimits::fast());
//! let m = machine.local_load(64 * 1024, 1);
//! assert!(m.mb_s > 0.0);
//! # Ok::<(), gasnub_memsim::ConfigError>(())
//! ```

use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::ConfigError;

use crate::engine::{delegate_machine, TransferEngine};
use crate::limits::MeasureLimits;
use crate::spec::MachineSpec;

/// Builder for a [`CustomMachine`].
#[derive(Debug, Clone)]
pub struct CustomMachineBuilder {
    name: String,
    node: NodeConfig,
    limits: MeasureLimits,
}

impl CustomMachineBuilder {
    /// Starts a builder from a node description.
    pub fn new(name: impl Into<String>, node: NodeConfig) -> Self {
        CustomMachineBuilder {
            name: name.into(),
            node,
            limits: MeasureLimits::new(),
        }
    }

    /// Overrides the measurement caps.
    pub fn limits(mut self, limits: MeasureLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Mutable access to the node description for incremental tweaks.
    pub fn node_mut(&mut self) -> &mut NodeConfig {
        &mut self.node
    }

    /// The immutable spec this builder describes (for engine spawning).
    pub fn spec(&self) -> MachineSpec {
        MachineSpec::custom(self.name.clone(), self.node.clone()).with_limits(self.limits)
    }

    /// Validates the description and builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the node description is invalid.
    pub fn build(self) -> Result<CustomMachine, ConfigError> {
        Ok(CustomMachine {
            engine: self.spec().build()?,
        })
    }
}

/// A user-defined node running the paper's local micro-benchmarks.
///
/// Remote probes return `None`: a custom machine describes one node; remote
/// paths need a full interconnect description, which the three built-in
/// machines provide.
#[derive(Debug)]
pub struct CustomMachine {
    engine: TransferEngine,
}

delegate_machine!(CustomMachine);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineId};
    use gasnub_memsim::config::presets;

    fn machine() -> CustomMachine {
        CustomMachineBuilder::new("test node", presets::tiny_test_node())
            .limits(MeasureLimits::fast())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        let mut b = CustomMachineBuilder::new("bad", presets::tiny_test_node());
        b.node_mut().cpu.clock_mhz = 0.0;
        assert!(b.build().is_err());
    }

    #[test]
    fn custom_machine_has_plateaus() {
        let mut m = machine();
        let l1 = m.local_load(4 << 10, 1).mb_s;
        let dram = m.local_load(2 << 20, 1).mb_s;
        assert!(l1 > 2.0 * dram, "L1 {l1} vs DRAM {dram}");
    }

    #[test]
    fn custom_machine_sweeps_through_core_apis() {
        // A custom machine is a first-class `Machine`: the generic sweep
        // infrastructure accepts it.
        let mut m = machine();
        let probe: &mut dyn Machine = &mut m;
        assert_eq!(probe.id(), MachineId::Custom);
        assert!(probe.remote_fetch(1 << 20, 1).is_none());
        let copy = probe.local_copy(1 << 20, 1, 1);
        assert!(copy.mb_s > 0.0);
        let gather = probe.local_gather(1 << 20);
        assert!(gather.mb_s > 0.0);
    }

    #[test]
    fn name_includes_clock() {
        let m = machine();
        assert!(m.name().contains("test node"));
        assert!(m.name().contains("100"));
    }

    #[test]
    fn builder_spec_spawns_equivalent_engines() {
        use crate::spec::SpawnEngine;
        let builder = CustomMachineBuilder::new("test node", presets::tiny_test_node())
            .limits(MeasureLimits::fast());
        let spec = builder.spec();
        let mut spawned = spec.spawn_engine().unwrap();
        let mut built = builder.build().unwrap();
        let a = spawned.local_load(1 << 20, 4);
        let b = built.local_load(1 << 20, 4);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    }
}
