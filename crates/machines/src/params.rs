//! Parameter tables for the three machines.
//!
//! Geometry (cache sizes, line sizes, associativities, clock rates, bus
//! widths, register counts) comes straight from the paper's §3 and the
//! referenced data sheets. Cycle-level costs (fill, drain, round-trip,
//! protocol overheads) are *calibrated*: chosen so that the simulated
//! plateaus land on the bandwidth figures the paper's prose quotes, while
//! staying physically plausible (e.g. the 8400's untrained DRAM access
//! calibrates to ~131 CPU cycles ≈ 437 ns, inside the vendor's published
//! 176-928 ns load-latency range). See `crate::calibration` for the target
//! table and `EXPERIMENTS.md` for measured-vs-paper.

use gasnub_interconnect::bus::BusConfig;
use gasnub_interconnect::link::LinkConfig;
use gasnub_interconnect::message::MessageCostModel;
use gasnub_interconnect::ni::{ERegistersConfig, T3dNiConfig};
use gasnub_memsim::cache::{AllocatePolicy, CacheConfig, WritePolicy};
use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::cpu::CpuConfig;
use gasnub_memsim::dram::DramConfig;
use gasnub_memsim::hierarchy::{HierarchyConfig, LevelConfig};
use gasnub_memsim::stream::StreamConfig;
use gasnub_memsim::write_buffer::WriteBufferConfig;

use gasnub_coherence::smp::{ProtocolConfig, SmpConfig};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

// ---------------------------------------------------------------------------
// DEC 8400
// ---------------------------------------------------------------------------

/// One processor node of the DEC 8400: 300 MHz 21164 with the on-chip
/// 8 KB L1 and 96 KB L2, a 4 MB board-level L3, and interleaved DRAM whose
/// costs include crossing the system bus.
pub fn dec8400_node() -> NodeConfig {
    NodeConfig {
        name: "DEC 8400 node (300 MHz 21164)".to_string(),
        cpu: CpuConfig {
            // ~2.2 cycles per load in compiled code: the paper measured
            // "about half of the peak bandwidth for loads out of L1 cache"
            // — 1100 of 2400 MB/s.
            clock_mhz: 300.0,
            load_issue_cycles: 2.0,
            store_issue_cycles: 2.0,
            loop_overhead_cycles: 0.2,
            miss_overlap: 2.0,
        },
        hierarchy: HierarchyConfig {
            levels: vec![
                LevelConfig {
                    // 8 KB, direct mapped, write through, 2-clock latency.
                    cache: CacheConfig {
                        name: "L1".to_string(),
                        capacity_bytes: 8 * KB,
                        line_bytes: 32,
                        associativity: 1,
                        write_policy: WritePolicy::WriteThrough,
                        allocate_policy: AllocatePolicy::ReadAllocate,
                    },
                    // L2 -> L1 delivery, calibrated to the 700 MB/s L2
                    // plateau (2.2 + 4.9/4 cycles per contiguous word).
                    fill_cycles: 4.9,
                    streamed_fill_cycles: 4.9,
                    stream: None,
                    write_back_cycles: 4.0,
                },
                LevelConfig {
                    // 96 KB, 3-way, unified, write back (on-chip 21164 L2).
                    cache: CacheConfig {
                        name: "L2".to_string(),
                        capacity_bytes: 96 * KB,
                        line_bytes: 64,
                        associativity: 3,
                        write_policy: WritePolicy::WriteBack,
                        allocate_policy: AllocatePolicy::ReadWriteAllocate,
                    },
                    // L3 -> L2: the read-ahead logic of the L2 makes trained
                    // streams cheap (600 MB/s L3 contiguous plateau) while
                    // strided L3 accesses pay the full fill and overfetch a
                    // whole 64-byte line per used word (120 MB/s plateau).
                    fill_cycles: 12.9,
                    streamed_fill_cycles: 4.6,
                    stream: Some(StreamConfig {
                        slots: 2,
                        train_length: 2,
                    }),
                    write_back_cycles: 6.0,
                },
                LevelConfig {
                    // 4 MB board-level SRAM L3 (10 ns parts).
                    cache: CacheConfig {
                        name: "L3".to_string(),
                        capacity_bytes: 4 * MB,
                        line_bytes: 64,
                        associativity: 1,
                        write_policy: WritePolicy::WriteBack,
                        allocate_policy: AllocatePolicy::ReadWriteAllocate,
                    },
                    // Last level: fills come from the DRAM model below, so
                    // these per-line costs are only used for write-backs.
                    fill_cycles: 12.0,
                    streamed_fill_cycles: 12.0,
                    stream: None,
                    write_back_cycles: 20.0,
                },
            ],
            // Two-way interleaved memory modules, up to 8 banks with four
            // modules installed. The untrained access cost calibrates to
            // 110 + 60 cycles (≈ 437-567 ns) — inside the vendor's
            // 176-928 ns range — and the streamed line rate to 96 cycles
            // per 64-byte line (200 MB/s raw, 150 MB/s delivered).
            dram: DramConfig {
                banks: 8,
                interleave_bytes: 64,
                row_bytes: 4096,
                row_hit_cycles: 110.0,
                row_miss_extra_cycles: 60.0,
                bank_busy_cycles: 30.0,
            },
            dram_stream: Some(StreamConfig {
                slots: 2,
                train_length: 2,
            }),
            dram_streamed_line_cycles: 96.0,
            dram_store_word_cycles: 40.0,
            write_buffer: None,
            dram_contention: 1.0,
            dram_stream_contention: 1.0,
        },
    }
}

/// The full four-processor 8400 system (bus + protocol + home memory).
pub fn dec8400_smp() -> SmpConfig {
    SmpConfig {
        nodes: 4,
        node: dec8400_node(),
        bus: BusConfig {
            bus_clock_mhz: 75.0,
            cpu_clock_mhz: 300.0,
            width_bytes: 32,
            arbitration_bus_cycles: 0.5,
            snoop_bus_cycles: 0.5,
            burst: true,
        },
        protocol: ProtocolConfig {
            read_overhead_cycles: 10.0,
            cache_to_cache_cycles: 95.0,
            pull_overlap: 1.5,
        },
        home_dram: DramConfig {
            banks: 8,
            interleave_bytes: 64,
            row_bytes: 4096,
            row_hit_cycles: 110.0,
            row_miss_extra_cycles: 60.0,
            bank_busy_cycles: 30.0,
        },
    }
}

/// The §5.1 "all four processors accessing DRAM" contention factors:
/// -8% contiguous, -25% strided.
pub fn dec8400_contention_factors() -> (f64, f64) {
    // (streamed multiplier, random multiplier)
    (1.10, 1.45)
}

// ---------------------------------------------------------------------------
// Cray T3D
// ---------------------------------------------------------------------------

/// One PE of the Cray T3D: 150 MHz 21064, 8 KB write-through L1 only,
/// external read-ahead logic and a coalescing write-back queue.
pub fn t3d_node() -> NodeConfig {
    NodeConfig {
        name: "Cray T3D PE (150 MHz 21064)".to_string(),
        cpu: CpuConfig {
            clock_mhz: 150.0,
            load_issue_cycles: 2.0,
            store_issue_cycles: 1.0,
            loop_overhead_cycles: 0.0,
            miss_overlap: 1.5,
        },
        hierarchy: HierarchyConfig {
            levels: vec![LevelConfig {
                cache: CacheConfig {
                    name: "L1".to_string(),
                    capacity_bytes: 8 * KB,
                    line_bytes: 32,
                    associativity: 1,
                    write_policy: WritePolicy::WriteThrough,
                    allocate_policy: AllocatePolicy::ReadAllocate,
                },
                fill_cycles: 16.0,
                streamed_fill_cycles: 16.0,
                stream: None,
                write_back_cycles: 4.0,
            }],
            // "DRAM accesses within the same DRAM page are accelerated."
            dram: DramConfig {
                banks: 4,
                interleave_bytes: 64,
                row_bytes: 4096,
                row_hit_cycles: 34.0,
                row_miss_extra_cycles: 12.0,
                bank_busy_cycles: 16.0,
            },
            // The external read-ahead logic: one stream, trains fast.
            dram_stream: Some(StreamConfig {
                slots: 1,
                train_length: 2,
            }),
            // 16.6 cycles per 32-byte line = 290 MB/s raw read-ahead rate,
            // delivering the 195 MB/s contiguous plateau after issue costs.
            dram_streamed_line_cycles: 16.6,
            dram_store_word_cycles: 12.0,
            // "an on-chip write-back queue that buffers the high rate
            // processor writes and coalesces them into 32 bytes entities".
            write_buffer: Some(WriteBufferConfig {
                entries: 8,
                entry_bytes: 32,
                drain_cycles_per_entry: 16.0,
                coalesce: true,
            }),
            dram_contention: 1.0,
            dram_stream_contention: 1.0,
        },
    }
}

/// Remote-path parameters of the T3D.
#[derive(Debug, Clone, PartialEq)]
pub struct T3dRemoteParams {
    /// Network interface (packet costs, prefetch FIFO, node-pair sharing).
    pub ni: T3dNiConfig,
    /// Torus link (CPU cycles; 0.5 cycles/byte = 300 MB/s at 150 MHz).
    pub link: LinkConfig,
    /// Extra wire bytes per packet (the T3D sends address + data).
    pub header_bytes: u64,
    /// Destination-side write path (same coalescing write queue shape the
    /// deposit circuitry drives). `drain_cycles_per_entry` is unused — the
    /// actual service time comes from `dest_dram`'s row state.
    pub dest_write: WriteBufferConfig,
    /// Destination DRAM as driven by the deposit circuitry: page-mode
    /// writes are fast, but large-stride deposits reopen a row per word.
    pub dest_dram: DramConfig,
    /// Hops between the benchmark's source and destination PEs.
    pub hops: u32,
}

/// T3D remote-path parameters used by the paper's four-PE partition
/// (source and destination one hop apart, one PE of each node pair active).
pub fn t3d_remote() -> T3dRemoteParams {
    T3dRemoteParams {
        ni: T3dNiConfig {
            message: MessageCostModel {
                per_message_cycles: 8.0,
                per_byte_cycles: 0.15,
                partner_switch_cycles: 50.0,
            },
            remote_load_round_trip_cycles: 300.0,
            prefetch_fifo_depth: 8,
            shared_by_node_pair: true,
        },
        link: LinkConfig {
            cycles_per_byte: 0.5,
            per_hop_cycles: 4.0,
        },
        header_bytes: 8,
        dest_write: WriteBufferConfig {
            entries: 8,
            entry_bytes: 32,
            drain_cycles_per_entry: 16.0,
            coalesce: true,
        },
        dest_dram: DramConfig {
            banks: 4,
            interleave_bytes: 64,
            row_bytes: 4096,
            row_hit_cycles: 16.0,
            row_miss_extra_cycles: 30.0,
            bank_busy_cycles: 16.0,
        },
        hops: 1,
    }
}

// ---------------------------------------------------------------------------
// Cray T3E
// ---------------------------------------------------------------------------

/// One PE of the Cray T3E: 300 MHz 21164 (L1 + L2 on chip, no L3) with six
/// stream buffers in the support circuitry.
pub fn t3e_node() -> NodeConfig {
    NodeConfig {
        name: "Cray T3E PE (300 MHz 21164)".to_string(),
        cpu: CpuConfig {
            clock_mhz: 300.0,
            load_issue_cycles: 2.0,
            store_issue_cycles: 2.0,
            loop_overhead_cycles: 0.2,
            miss_overlap: 2.0,
        },
        hierarchy: HierarchyConfig {
            levels: vec![
                LevelConfig {
                    cache: CacheConfig {
                        name: "L1".to_string(),
                        capacity_bytes: 8 * KB,
                        line_bytes: 32,
                        associativity: 1,
                        write_policy: WritePolicy::WriteThrough,
                        allocate_policy: AllocatePolicy::ReadAllocate,
                    },
                    fill_cycles: 4.9,
                    streamed_fill_cycles: 4.9,
                    stream: None,
                    write_back_cycles: 4.0,
                },
                LevelConfig {
                    cache: CacheConfig {
                        name: "L2".to_string(),
                        capacity_bytes: 96 * KB,
                        line_bytes: 64,
                        associativity: 3,
                        write_policy: WritePolicy::WriteBack,
                        allocate_policy: AllocatePolicy::ReadWriteAllocate,
                    },
                    // Last cache level: fills come from DRAM; these costs
                    // cover write-backs of dirty lines.
                    fill_cycles: 12.9,
                    streamed_fill_cycles: 4.6,
                    stream: None,
                    write_back_cycles: 10.0,
                },
            ],
            // The L2 is the last cache level, so a strided miss pays one
            // less fill hop than on the 8400; the untrained access cost
            // (100 + 40 cycles ≈ 333-467 ns) calibrates the 42 MB/s strided
            // plateau the T3E is "stuck at" (§5.5).
            dram: DramConfig {
                banks: 8,
                interleave_bytes: 64,
                row_bytes: 4096,
                row_hit_cycles: 100.0,
                row_miss_extra_cycles: 40.0,
                bank_busy_cycles: 25.0,
            },
            // Six stream buffers; 14 cycles per 64-byte line ≈ 1.37 GB/s raw
            // stream rate, delivering the ~430 MB/s contiguous plateau.
            dram_stream: Some(StreamConfig {
                slots: 6,
                train_length: 2,
            }),
            dram_streamed_line_cycles: 14.0,
            dram_store_word_cycles: 35.0,
            write_buffer: None,
            dram_contention: 1.0,
            dram_stream_contention: 1.0,
        },
    }
}

/// Remote-path parameters of the T3E (E-registers + faster torus).
#[derive(Debug, Clone, PartialEq)]
pub struct T3eRemoteParams {
    /// The 512 E-registers.
    pub eregs: ERegistersConfig,
    /// Torus link (0.25 cycles/byte = 1.2 GB/s at 300 MHz).
    pub link: LinkConfig,
    /// Cycles per coalesced 64-byte block transfer (contiguous puts/gets):
    /// calibrates the 350 MB/s contiguous remote plateau.
    pub block_cycles: f64,
    /// Block size the E-register gather/scatter uses for unit-stride data.
    pub block_bytes: u64,
    /// Extra per-word cycles for non-unit-stride (single-word) operations:
    /// calibrates the ~140 MB/s strided plateau.
    pub strided_word_extra_cycles: f64,
    /// Destination memory as seen by incoming single-word puts:
    /// word-interleaved banks whose busy windows produce the even-stride
    /// ripples of Fig. 8 ("the same bank is hit in consecutive receives").
    pub dest_word_banks: gasnub_memsim::dram::DramConfig,
    /// Hops between source and destination PEs.
    pub hops: u32,
}

/// T3E remote-path parameters (four-PE partition, one hop).
pub fn t3e_remote() -> T3eRemoteParams {
    T3eRemoteParams {
        eregs: ERegistersConfig {
            count: 512,
            word_issue_cycles: 6.8,
            call_setup_cycles: 400.0,
            round_trip_cycles: 240.0,
        },
        link: LinkConfig {
            cycles_per_byte: 0.25,
            per_hop_cycles: 3.0,
        },
        block_cycles: 55.0,
        block_bytes: 64,
        strided_word_extra_cycles: 10.2,
        dest_word_banks: DramConfig {
            banks: 8,
            interleave_bytes: 8,
            row_bytes: 4096,
            row_hit_cycles: 6.0,
            row_miss_extra_cycles: 8.0,
            bank_busy_cycles: 34.0,
        },
        hops: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_node_configs_validate() {
        dec8400_node().validate().unwrap();
        t3d_node().validate().unwrap();
        t3e_node().validate().unwrap();
    }

    #[test]
    fn smp_config_validates() {
        dec8400_smp().validate().unwrap();
    }

    #[test]
    fn remote_params_validate() {
        let t3d = t3d_remote();
        t3d.ni.validate().unwrap();
        t3d.link.validate().unwrap();
        t3d.dest_write.validate().unwrap();
        let t3e = t3e_remote();
        t3e.eregs.validate().unwrap();
        t3e.link.validate().unwrap();
        t3e.dest_word_banks.validate().unwrap();
    }

    #[test]
    fn clock_rates_match_paper() {
        assert_eq!(dec8400_node().cpu.clock_mhz, 300.0);
        assert_eq!(t3d_node().cpu.clock_mhz, 150.0);
        assert_eq!(t3e_node().cpu.clock_mhz, 300.0);
    }

    #[test]
    fn cache_geometry_matches_paper() {
        let n = dec8400_node();
        assert_eq!(n.hierarchy.levels[0].cache.capacity_bytes, 8 * KB);
        assert_eq!(n.hierarchy.levels[1].cache.capacity_bytes, 96 * KB);
        assert_eq!(n.hierarchy.levels[1].cache.associativity, 3);
        assert_eq!(n.hierarchy.levels[2].cache.capacity_bytes, 4 * MB);
        let t = t3d_node();
        assert_eq!(
            t.hierarchy.levels.len(),
            1,
            "the T3D has only an on-chip L1"
        );
        let e = t3e_node();
        assert_eq!(e.hierarchy.levels.len(), 2, "the T3E has no L3");
        assert_eq!(e.hierarchy.dram_stream.as_ref().unwrap().slots, 6);
    }

    #[test]
    fn bus_peak_is_2_4_gb_s() {
        let bus = dec8400_smp().bus;
        assert!((bus.peak_mb_s() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn t3d_link_is_300_mb_s() {
        let link = t3d_remote().link;
        assert!((link.bandwidth_mb_s(150.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn eregister_count_is_512() {
        assert_eq!(t3e_remote().eregs.count, 512);
    }
}
