//! The machine registry: name → [`MachineSpec`] resolution.
//!
//! The registry is the single place machine names live. It starts from the
//! embedded built-in specs (the paper's three machines plus the reference
//! custom node — themselves ordinary spec files, see
//! [`crate::specfile`]) and can overlay a *zoo directory* of `.toml` spec
//! files. A zoo file with the same `name` as a built-in shadows it, so
//! editing `machines/zoo/t3d.toml` changes what `t3d` means without
//! touching Rust.
//!
//! Broken zoo files never abort discovery: they are collected with their
//! structured errors and surfaced by listings (`gasnub machines`) and by
//! resolution failures, so one typo'd file can't take the whole CLI down.

use std::path::{Path, PathBuf};

use crate::spec::{MachineSpec, BUILTIN_SPECS};

/// Environment variable overriding the default zoo directory.
pub const ZOO_ENV: &str = "GASNUB_ZOO";

/// Default zoo directory, relative to the working directory.
pub const ZOO_DIR: &str = "machines/zoo";

/// A zoo file that failed to load, with the structured reason.
#[derive(Debug, Clone)]
pub struct BrokenSpec {
    /// The file that failed.
    pub path: PathBuf,
    /// Why it failed (a parse/IO message, line-located when structured).
    pub message: String,
}

/// Failure to resolve a machine name, carrying every name that *would*
/// have resolved — the one place "expected …" lists come from.
#[derive(Debug, Clone)]
pub struct ResolveError {
    /// The name that did not resolve.
    pub name: String,
    /// All resolvable labels, in registry order.
    pub known: Vec<String>,
    /// Zoo files that failed to load (one of which may be the culprit).
    pub broken: Vec<BrokenSpec>,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown machine {:?} (expected {})",
            self.name,
            self.known.join(", ")
        )?;
        for b in &self.broken {
            write!(f, "; broken spec {}: {}", b.path.display(), b.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for ResolveError {}

/// An ordered collection of named machine specs.
#[derive(Debug, Clone, Default)]
pub struct MachineRegistry {
    specs: Vec<MachineSpec>,
    broken: Vec<BrokenSpec>,
}

impl MachineRegistry {
    /// A registry holding only the embedded built-in machines.
    pub fn builtin() -> Self {
        let mut reg = MachineRegistry::default();
        for (label, text) in BUILTIN_SPECS {
            let spec = MachineSpec::from_spec_str(text)
                .unwrap_or_else(|e| panic!("embedded spec {label:?} must parse: {e}"));
            reg.insert(spec);
        }
        reg
    }

    /// The built-ins plus the zoo directory: `$GASNUB_ZOO` when set,
    /// otherwise `machines/zoo` under the working directory when it
    /// exists. Zoo files shadow built-ins of the same name; files that
    /// fail to load are recorded, not fatal.
    pub fn discover() -> Self {
        let mut reg = Self::builtin();
        match std::env::var_os(ZOO_ENV) {
            Some(dir) => reg.load_dir(Path::new(&dir)),
            None => {
                let default = Path::new(ZOO_DIR);
                if default.is_dir() {
                    reg.load_dir(default);
                }
            }
        }
        reg
    }

    /// Loads every `.toml` file in `dir` (sorted by file name, so
    /// registry order is stable). Unreadable or unparsable files land in
    /// [`MachineRegistry::broken`].
    pub fn load_dir(&mut self, dir: &Path) {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                self.broken.push(BrokenSpec {
                    path: dir.to_path_buf(),
                    message: format!("unreadable zoo directory: {e}"),
                });
                return;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
            .collect();
        paths.sort();
        for path in paths {
            match std::fs::read_to_string(&path) {
                Ok(text) => match MachineSpec::from_spec_str(&text) {
                    Ok(spec) => self.insert(spec),
                    Err(e) => self.broken.push(BrokenSpec {
                        path,
                        message: e.to_string(),
                    }),
                },
                Err(e) => self.broken.push(BrokenSpec {
                    path,
                    message: format!("unreadable: {e}"),
                }),
            }
        }
    }

    /// Registers a spec, shadowing any existing spec with the same label
    /// (in place, preserving registry order).
    pub fn insert(&mut self, spec: MachineSpec) {
        match self
            .specs
            .iter_mut()
            .find(|s| s.label().eq_ignore_ascii_case(spec.label()))
        {
            Some(slot) => *slot = spec,
            None => self.specs.push(spec),
        }
    }

    /// Resolves a machine name (label or alias, case-insensitive) to its
    /// spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ResolveError`] enumerating every resolvable name (and
    /// any broken zoo files) when the name matches nothing.
    pub fn resolve(&self, name: &str) -> Result<&MachineSpec, ResolveError> {
        self.specs
            .iter()
            .find(|s| {
                s.label().eq_ignore_ascii_case(name)
                    || s.aliases().iter().any(|a| a.eq_ignore_ascii_case(name))
            })
            .ok_or_else(|| ResolveError {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
                broken: self.broken.clone(),
            })
    }

    /// All resolvable labels, in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(MachineSpec::label).collect()
    }

    /// The registered specs, in registry order.
    pub fn specs(&self) -> &[MachineSpec] {
        &self.specs
    }

    /// Zoo files that failed to load.
    pub fn broken(&self) -> &[BrokenSpec] {
        &self.broken
    }

    /// A comma-separated list of every resolvable label — the one string
    /// usage/error messages embed.
    pub fn name_list(&self) -> String {
        self.names().join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;

    #[test]
    fn builtin_registry_resolves_canonical_names_and_aliases() {
        let reg = MachineRegistry::builtin();
        assert_eq!(reg.names(), vec!["dec8400", "t3d", "t3e", "custom"]);
        assert_eq!(reg.resolve("t3d").unwrap().id(), MachineId::CrayT3d);
        assert_eq!(reg.resolve("T3D").unwrap().id(), MachineId::CrayT3d);
        assert_eq!(reg.resolve("cray-t3e").unwrap().id(), MachineId::CrayT3e);
        assert_eq!(reg.resolve("8400").unwrap().id(), MachineId::Dec8400);
        assert_eq!(reg.resolve("alphaserver").unwrap().id(), MachineId::Dec8400);
        assert_eq!(reg.resolve("custom").unwrap().id(), MachineId::Custom);
    }

    #[test]
    fn resolve_errors_enumerate_known_names() {
        let reg = MachineRegistry::builtin();
        let err = reg.resolve("paragon").unwrap_err();
        assert_eq!(err.name, "paragon");
        let msg = err.to_string();
        assert!(msg.contains("dec8400") && msg.contains("custom"), "{msg}");
    }

    #[test]
    fn inserting_shadows_by_label() {
        let mut reg = MachineRegistry::builtin();
        let before = reg.names().len();
        let mut shadow = MachineSpec::t3d();
        shadow = shadow.with_limits(crate::MeasureLimits::fast());
        reg.insert(shadow);
        assert_eq!(
            reg.names().len(),
            before,
            "shadowing must not grow the registry"
        );
        assert_eq!(
            reg.resolve("t3d").unwrap().limits(),
            crate::MeasureLimits::fast()
        );
    }

    #[test]
    fn broken_files_are_collected_not_fatal() {
        let dir = std::env::temp_dir().join(format!("gasnub-registry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.toml"), "name = \"x\"\nmodel = ").unwrap();
        std::fs::write(
            dir.join("ok.toml"),
            MachineSpec::t3d()
                .to_spec_string()
                .replace("name = \"t3d\"", "name = \"t3d-variant\""),
        )
        .unwrap();
        let mut reg = MachineRegistry::builtin();
        reg.load_dir(&dir);
        assert_eq!(reg.broken().len(), 1);
        assert!(reg.resolve("t3d-variant").is_ok());
        let err = reg.resolve("nope").unwrap_err().to_string();
        assert!(err.contains("broken.toml"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
