//! The Cray T3E model.
//!
//! A 300 MHz 21164 PE (on-chip L1/L2, no L3) with six stream buffers in the
//! support circuitry and 512 E-registers for remote transfers (§3.3).
//! Fetch and deposit are symmetric through the E-registers ("Unlike on the
//! T3D, the deposit model enjoys no performance advantages over the fetch
//! model", §5.6); unit-stride transfers move coalesced blocks at
//! ~350 MB/s, strided transfers move single words, and strided *deposits*
//! additionally serialize on destination memory banks — the even-stride
//! ripples of Fig. 8.
//!
//! The probe loops live in [`crate::engine::TransferEngine`]; this type is
//! a thin shell that keeps the calibrated constructors and ablations.

use gasnub_faults::FaultPlan;

use crate::engine::{delegate_machine, TransferEngine};
use crate::params::{self, T3eRemoteParams};
use crate::spec::MachineSpec;

/// The Cray T3E machine model (one active PE plus the remote paths).
#[derive(Debug)]
pub struct T3e {
    engine: TransferEngine,
}

impl T3e {
    /// Builds the paper's T3E PE with default limits.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in parameter table is inconsistent (a bug).
    pub fn new() -> Self {
        Self::with_params(params::t3e_node(), params::t3e_remote())
            .expect("built-in T3E parameters must validate")
    }

    /// Builds a T3E variant from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error.
    pub fn with_params(
        node: gasnub_memsim::NodeConfig,
        remote: T3eRemoteParams,
    ) -> Result<Self, gasnub_memsim::ConfigError> {
        Ok(T3e {
            engine: MachineSpec::t3e_with(node, remote).build()?,
        })
    }

    /// Builds a T3E degraded by `plan`: the remote path detours around the
    /// plan's failed torus channels (more hops, bottleneck capacity scales
    /// the per-byte link rate) and the E-registers retry lost transfers
    /// with exponential-backoff timeouts. Same plan, same cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`gasnub_memsim::SimError`] when the plan disconnects the
    /// canonical remote pair or a derived configuration fails validation.
    pub fn with_faults(plan: &FaultPlan) -> Result<Self, gasnub_memsim::SimError> {
        Ok(T3e {
            engine: MachineSpec::t3e().with_faults(plan)?.build()?,
        })
    }

    /// The footnote-3 ablation: the early T3E test vehicle with streaming
    /// support disabled (measured ~120 MB/s contiguous from DRAM).
    pub fn new_without_streams() -> Self {
        let mut node = params::t3e_node();
        node.hierarchy.dram_stream = None;
        // Without stream buffers the 21164 cannot overlap its misses either:
        // each fill blocks for the full access.
        node.cpu.miss_overlap = 1.0;
        Self::with_params(node, params::t3e_remote()).expect("ablation parameters must validate")
    }
}

impl Default for T3e {
    fn default() -> Self {
        Self::new()
    }
}

delegate_machine!(T3e);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::MeasureLimits;
    use crate::machine::Machine;

    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;

    fn machine() -> T3e {
        let mut m = T3e::new();
        m.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        });
        m
    }

    #[test]
    fn l1_and_l2_match_the_8400() {
        // §5.5: "the local memory access performance of the T3E resembles
        // the picture of the DEC 8400 in the performance of its L1 and L2".
        let mut t3e = machine();
        let l1 = t3e.local_load(4 * KB, 1).mb_s;
        let l2 = t3e.local_load(64 * KB, 1).mb_s;
        assert!((l1 - 1100.0).abs() / 1100.0 < 0.15, "L1: got {l1}");
        assert!((l2 - 700.0).abs() / 700.0 < 0.15, "L2: got {l2}");
    }

    #[test]
    fn dram_contiguous_near_430() {
        let m = machine().local_load(8 * MB, 1);
        assert!(
            (m.mb_s - 430.0).abs() / 430.0 < 0.2,
            "DRAM contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn dram_strided_near_42_matching_t3d() {
        // §5.5: "These accesses seem stuck at about 42 MByte/s on the T3E
        // (43 MByte/s on the T3D)."
        let t3e = machine().local_load(8 * MB, 16).mb_s;
        assert!((t3e - 42.0).abs() / 42.0 < 0.3, "T3E strided: got {t3e}");
        let mut t3d = crate::T3d::new();
        t3d.set_limits(machine().limits());
        let t3d_bw = t3d.local_load(8 * MB, 16).mb_s;
        let ratio = t3e / t3d_bw;
        assert!(
            ratio > 0.7 && ratio < 1.4,
            "strided DRAM stuck across generations: {ratio}"
        );
    }

    #[test]
    fn streams_ablation_collapses_contiguous_dram() {
        // Footnote 3: the test vehicle without streaming measured about
        // 120 MB/s.
        let with = machine().local_load(8 * MB, 1).mb_s;
        let mut without = T3e::new_without_streams();
        without.set_limits(machine().limits());
        let wo = without.local_load(8 * MB, 1).mb_s;
        assert!(with / wo > 2.0, "streams must matter: {with} vs {wo}");
        assert!(wo < 250.0, "streams-off must fall well below 430: got {wo}");
    }

    #[test]
    fn remote_contiguous_near_350_both_directions() {
        let mut mach = machine();
        let put = mach.remote_deposit(8 * MB, 1).unwrap().mb_s;
        let get = mach.remote_fetch(8 * MB, 1).unwrap().mb_s;
        assert!((put - 350.0).abs() / 350.0 < 0.15, "put contig: got {put}");
        assert!((get - 350.0).abs() / 350.0 < 0.15, "get contig: got {get}");
    }

    #[test]
    fn strided_fetch_near_140() {
        let m = machine().remote_fetch(8 * MB, 16).unwrap();
        assert!(
            (m.mb_s - 140.0).abs() / 140.0 < 0.2,
            "get strided: got {}",
            m.mb_s
        );
    }

    #[test]
    fn strided_deposit_near_70_for_power_of_two_strides() {
        let mut mach = machine();
        for stride in [8u64, 16, 32, 64] {
            let m = mach.remote_deposit(8 * MB, stride).unwrap();
            assert!(
                (m.mb_s - 70.0).abs() / 70.0 < 0.25,
                "put stride {stride}: got {}",
                m.mb_s
            );
        }
    }

    #[test]
    fn odd_stride_deposits_ripple_upwards() {
        // Fig 8/14: odd strides avoid the destination bank conflicts.
        let mut mach = machine();
        let odd = mach.remote_deposit(8 * MB, 15).unwrap().mb_s;
        let even = mach.remote_deposit(8 * MB, 16).unwrap().mb_s;
        assert!(odd > 1.5 * even, "odd {odd} vs even {even}");
    }

    #[test]
    fn fetch_beats_deposit_for_even_strides() {
        // §5.6: "fetches are more advantageous for even strides than
        // deposits."
        let mut mach = machine();
        let get = mach.remote_fetch(8 * MB, 16).unwrap().mb_s;
        let put = mach.remote_deposit(8 * MB, 16).unwrap().mb_s;
        assert!(get > 1.5 * put, "get {get} vs put {put}");
    }

    #[test]
    fn remote_contiguous_is_4x_t3d_and_2x_8400() {
        // §5.6: "This is more than four times the bandwidth in the Cray T3D
        // and twice the bandwidth in the DEC 8400."
        let t3e = machine().remote_deposit(8 * MB, 1).unwrap().mb_s;
        let mut t3d = crate::T3d::new();
        t3d.set_limits(machine().limits());
        let t3d_bw = t3d.remote_deposit(8 * MB, 1).unwrap().mb_s;
        let mut dec = crate::Dec8400::new();
        dec.set_limits(machine().limits());
        let dec_bw = dec.remote_load(32 * MB, 1).unwrap().mb_s;
        assert!(t3e / t3d_bw > 2.4, "T3E/T3D remote ratio {}", t3e / t3d_bw);
        assert!(t3e / dec_bw > 1.7, "T3E/8400 remote ratio {}", t3e / dec_bw);
    }

    #[test]
    fn local_copy_contiguous_near_200() {
        let m = machine().local_copy(8 * MB, 1, 1);
        assert!(
            (m.mb_s - 200.0).abs() / 200.0 < 0.3,
            "copy contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn gather_is_the_slowest_dram_pattern() {
        // Indexed accesses defeat both the line overfetch amortization and
        // the stream buffers *and* thrash DRAM rows.
        let mut mach = machine();
        let gather = mach.local_gather(8 * MB).mb_s;
        let strided = mach.local_load(8 * MB, 16).mb_s;
        let contig = mach.local_load(8 * MB, 1).mb_s;
        assert!(
            gather <= strided * 1.05,
            "gather {gather} vs strided {strided}"
        );
        assert!(gather < contig / 5.0, "gather {gather} vs contig {contig}");
        // But cache-resident gathers run at the L1 plateau.
        let small = mach.local_gather(4 * KB).mb_s;
        assert!(small > 800.0, "L1-resident gather: {small}");
    }

    #[test]
    fn remote_copy_bandwidth_at_least_local_copy_bandwidth() {
        // §9: "On all three machines, the straight remote memory copy
        // bandwidth (or communication performance) is equal to or higher
        // than the local copy performance."
        let mut mach = machine();
        let local = mach.local_copy(8 * MB, 1, 1).mb_s;
        let remote = mach.remote_deposit(8 * MB, 1).unwrap().mb_s;
        assert!(remote >= 0.9 * local, "remote {remote} vs local {local}");
    }
}
