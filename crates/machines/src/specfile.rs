//! A zero-dependency TOML-subset loader/serializer for machine specs.
//!
//! A machine is a *file*: clock and hierarchy parameters, interconnect
//! topology, NI/bus configuration and calibration tolerances, written in a
//! small TOML subset and loaded into a [`MachineSpec`] through
//! [`MachineSpec::from_spec_str`]. The serializer
//! ([`MachineSpec::to_spec_string`]) emits the same dialect, and
//! `parse(render(spec)) == spec` holds exactly — float values are written
//! in shortest round-trip form — which is what makes the spec hash
//! ([`MachineSpec::spec_hash`]) a stable identity for checkpoints.
//!
//! ## Supported syntax
//!
//! * `# comments`, blank lines
//! * `[section]` and `[section.sub]` headers
//! * `[[section]]` array-of-tables headers (used for cache levels)
//! * `key = value` where value is a `"string"`, `true`/`false`, a number,
//!   or an array of strings (`aliases = ["t3d", "cray-t3d"]`)
//!
//! Anything else — duplicate keys, unknown keys, missing sections, values
//! of the wrong type or range — is a structured [`SpecError`], with the
//! line number where the offending construct appeared.
//!
//! ## The four model families
//!
//! `model =` selects which simulation backend the file parameterizes:
//!
//! | model     | backend                             | paper machine |
//! |-----------|-------------------------------------|---------------|
//! | `"smp"`   | snooping bus SMP, remote = pull     | DEC 8400      |
//! | `"torus"` | NI + link fetch/deposit circuitry   | Cray T3D      |
//! | `"eregs"` | E-register block/word remote path   | Cray T3E      |
//! | `"node"`  | single node, local probes only      | —             |
//!
//! A modern NUMA socket pair is a `"torus"` machine (remote socket = one
//! hop over the processor interconnect); a many-core SMP is an `"smp"`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gasnub_coherence::smp::{ProtocolConfig, SmpConfig};
use gasnub_interconnect::bus::{BusConfig, BusJitterConfig};
use gasnub_interconnect::link::LinkConfig;
use gasnub_interconnect::message::MessageCostModel;
use gasnub_interconnect::ni::{ERegistersConfig, NiLossConfig, T3dNiConfig};
use gasnub_memsim::cache::{AllocatePolicy, CacheConfig, WritePolicy};
use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::cpu::CpuConfig;
use gasnub_memsim::dram::DramConfig;
use gasnub_memsim::hierarchy::{HierarchyConfig, LevelConfig};
use gasnub_memsim::stream::StreamConfig;
use gasnub_memsim::write_buffer::WriteBufferConfig;

use crate::machine::MachineId;
use crate::params::{T3dRemoteParams, T3eRemoteParams};
use crate::spec::{MachineSpec, SpecKind};

/// A structured error from loading or decoding a machine spec file.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The text is not in the supported TOML subset.
    Parse {
        /// 1-based line of the offending construct.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A key the schema does not know (often a typo).
    UnknownKey {
        /// 1-based line where the key appears.
        line: usize,
        /// Dotted path of the unknown key (`"remote.ni.frobs"`).
        key: String,
    },
    /// A key the schema requires is absent.
    MissingKey {
        /// Dotted path of the section that lacks it (`""` for top level).
        section: String,
        /// The missing key.
        key: String,
    },
    /// A key holds a value of the wrong type or shape.
    BadValue {
        /// 1-based line of the value.
        line: usize,
        /// Dotted path of the key.
        key: String,
        /// What was expected.
        message: String,
    },
    /// The file decoded but the described machine is invalid (a component
    /// `validate()` rejected it — negative cost, non-power-of-two cache…).
    Invalid {
        /// The component validation message.
        message: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpecError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            SpecError::MissingKey { section, key } => {
                if section.is_empty() {
                    write!(f, "missing key {key:?}")
                } else {
                    write!(f, "missing key {key:?} in [{section}]")
                }
            }
            SpecError::BadValue { line, key, message } => {
                write!(f, "line {line}: {key}: {message}")
            }
            SpecError::Invalid { message } => write!(f, "invalid machine: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Syntax layer: text -> Table tree
// ---------------------------------------------------------------------------

/// A scalar or string-array value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    /// Numbers keep their token text so integer and float fields can apply
    /// their own (exact) parse.
    Num(String),
    StrArray(Vec<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::StrArray(_) => "string array",
        }
    }
}

#[derive(Debug)]
enum Node {
    Value(Value),
    Table(Table),
    ArrayOfTables(Vec<Table>),
}

#[derive(Debug, Default)]
struct Table {
    entries: BTreeMap<String, (usize, Node)>,
    /// Line of the header that opened this table (0 for the root).
    line: usize,
}

fn parse_err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError::Parse {
        line,
        message: message.into(),
    }
}

/// Strips a trailing comment (a `#` outside of any string literal).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Walks (creating as needed) to the table at `path`, for a `[header]`.
fn open_table<'a>(
    root: &'a mut Table,
    path: &str,
    line: usize,
) -> Result<&'a mut Table, SpecError> {
    let mut current = root;
    for part in path.split('.') {
        if !valid_key(part) {
            return Err(parse_err(line, format!("bad table name {path:?}")));
        }
        let entry = current
            .entries
            .entry(part.to_string())
            .or_insert_with(|| (line, Node::Table(Table::default())));
        current = match &mut entry.1 {
            Node::Table(t) => t,
            Node::ArrayOfTables(v) => v
                .last_mut()
                .expect("array-of-tables entries are never empty"),
            Node::Value(_) => {
                return Err(parse_err(line, format!("{part:?} is a value, not a table")));
            }
        };
    }
    Ok(current)
}

fn parse_scalar(token: &str, line: usize) -> Result<Value, SpecError> {
    let token = token.trim();
    if let Some(rest) = token.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(parse_err(line, "unterminated string"));
        };
        if body.contains('"') || body.contains('\\') {
            return Err(parse_err(line, "escapes are not supported in strings"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err(parse_err(line, "missing value")),
        _ => {}
    }
    if token.starts_with('[') {
        let Some(body) = token
            .strip_prefix('[')
            .and_then(|t| t.trim_end().strip_suffix(']'))
        else {
            return Err(parse_err(line, "unterminated array"));
        };
        let body = body.trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                match parse_scalar(item, line)? {
                    Value::Str(s) => items.push(s),
                    other => {
                        return Err(parse_err(
                            line,
                            format!("arrays may hold only strings, found {}", other.type_name()),
                        ));
                    }
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    // A number: validated lazily by the typed decode, but reject obvious
    // garbage here so `foo = bar` is a parse error, not a type error.
    if token
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | '_'))
    {
        Ok(Value::Num(token.replace('_', "")))
    } else {
        Err(parse_err(line, format!("unrecognized value {token:?}")))
    }
}

fn parse_document(text: &str) -> Result<Table, SpecError> {
    let mut root = Table::default();
    // Path of the current [section]; owned so we can re-walk per key
    // (re-walking keeps the borrow checker happy and files are tiny).
    let mut current_path: Option<(String, usize)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(path) = header.strip_suffix("]]") else {
                return Err(parse_err(line_no, "unterminated [[header]]"));
            };
            let path = path.trim();
            let (parent_path, leaf) = match path.rsplit_once('.') {
                Some((p, l)) => (p, l),
                None => ("", path),
            };
            if !valid_key(leaf) {
                return Err(parse_err(line_no, format!("bad table name {path:?}")));
            }
            let parent = if parent_path.is_empty() {
                &mut root
            } else {
                open_table(&mut root, parent_path, line_no)?
            };
            let entry = parent
                .entries
                .entry(leaf.to_string())
                .or_insert_with(|| (line_no, Node::ArrayOfTables(Vec::new())));
            match &mut entry.1 {
                Node::ArrayOfTables(v) => v.push(Table {
                    entries: BTreeMap::new(),
                    line: line_no,
                }),
                _ => {
                    return Err(parse_err(
                        line_no,
                        format!("{path:?} is already a table or value"),
                    ));
                }
            }
            current_path = Some((path.to_string(), line_no));
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(path) = header.strip_suffix(']') else {
                return Err(parse_err(line_no, "unterminated [header]"));
            };
            let path = path.trim().to_string();
            let table = open_table(&mut root, &path, line_no)?;
            if table.line == 0 && !table.entries.is_empty() {
                return Err(parse_err(line_no, format!("duplicate table [{path}]")));
            }
            if table.line == 0 {
                table.line = line_no;
            } else if table.entries.is_empty() && table.line != line_no {
                return Err(parse_err(line_no, format!("duplicate table [{path}]")));
            }
            current_path = Some((path, line_no));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(parse_err(
                line_no,
                format!("expected `key = value`: {line:?}"),
            ));
        };
        let key = key.trim();
        if !valid_key(key) {
            return Err(parse_err(line_no, format!("bad key {key:?}")));
        }
        let value = parse_scalar(value, line_no)?;
        let table = match &current_path {
            None => &mut root,
            Some((path, header_line)) => {
                let t = open_table(&mut root, path, *header_line)?;
                t
            }
        };
        if table.entries.contains_key(key) {
            return Err(parse_err(line_no, format!("duplicate key {key:?}")));
        }
        table
            .entries
            .insert(key.to_string(), (line_no, Node::Value(value)));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Typed decode layer: Table -> configs (consuming keys, rejecting leftovers)
// ---------------------------------------------------------------------------

/// A decoding cursor over one table: typed `take_*` accessors remove keys,
/// and [`Dec::finish`] turns any leftover into an [`SpecError::UnknownKey`].
struct Dec {
    path: String,
    table: Table,
}

impl Dec {
    fn new(path: impl Into<String>, table: Table) -> Self {
        Dec {
            path: path.into(),
            table,
        }
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn missing(&self, key: &str) -> SpecError {
        SpecError::MissingKey {
            section: self.path.clone(),
            key: key.to_string(),
        }
    }

    fn bad(&self, line: usize, key: &str, message: impl Into<String>) -> SpecError {
        SpecError::BadValue {
            line,
            key: self.key_path(key),
            message: message.into(),
        }
    }

    fn take_value(&mut self, key: &str) -> Option<(usize, Value)> {
        match self.table.entries.remove(key) {
            Some((line, Node::Value(v))) => Some((line, v)),
            Some(entry) => {
                // Put a non-value back so finish() reports it.
                self.table.entries.insert(key.to_string(), entry);
                None
            }
            None => None,
        }
    }

    fn take_str_opt(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        match self.take_value(key) {
            None => Ok(None),
            Some((_, Value::Str(s))) => Ok(Some(s)),
            Some((line, v)) => Err(self.bad(
                line,
                key,
                format!("expected a string, found {}", v.type_name()),
            )),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<String, SpecError> {
        self.take_str_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn take_f64_opt(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.take_value(key) {
            None => Ok(None),
            Some((line, Value::Num(text))) => match text.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Some(v)),
                _ => Err(self.bad(line, key, format!("not a finite number: {text:?}"))),
            },
            Some((line, v)) => Err(self.bad(
                line,
                key,
                format!("expected a number, found {}", v.type_name()),
            )),
        }
    }

    fn take_f64(&mut self, key: &str) -> Result<f64, SpecError> {
        self.take_f64_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn take_u64_opt(&mut self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.take_value(key) {
            None => Ok(None),
            Some((line, Value::Num(text))) => text.parse::<u64>().map(Some).map_err(|_| {
                self.bad(
                    line,
                    key,
                    format!("expected an unsigned integer, found {text:?}"),
                )
            }),
            Some((line, v)) => Err(self.bad(
                line,
                key,
                format!("expected an integer, found {}", v.type_name()),
            )),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<u64, SpecError> {
        self.take_u64_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn take_usize(&mut self, key: &str) -> Result<usize, SpecError> {
        Ok(self.take_u64(key)? as usize)
    }

    fn take_u32(&mut self, key: &str) -> Result<u32, SpecError> {
        Ok(self.take_u64(key)? as u32)
    }

    fn take_bool(&mut self, key: &str) -> Result<bool, SpecError> {
        match self.take_value(key) {
            None => Err(self.missing(key)),
            Some((_, Value::Bool(b))) => Ok(b),
            Some((line, v)) => Err(self.bad(
                line,
                key,
                format!("expected true or false, found {}", v.type_name()),
            )),
        }
    }

    fn take_str_array_opt(&mut self, key: &str) -> Result<Option<Vec<String>>, SpecError> {
        match self.take_value(key) {
            None => Ok(None),
            Some((_, Value::StrArray(items))) => Ok(Some(items)),
            Some((line, v)) => Err(self.bad(
                line,
                key,
                format!("expected a string array, found {}", v.type_name()),
            )),
        }
    }

    fn take_table_opt(&mut self, key: &str) -> Result<Option<Dec>, SpecError> {
        match self.table.entries.remove(key) {
            None => Ok(None),
            Some((_, Node::Table(t))) => Ok(Some(Dec::new(self.key_path(key), t))),
            Some((line, node)) => {
                self.table.entries.insert(key.to_string(), (line, node));
                Err(self.bad(line, key, "expected a [table]"))
            }
        }
    }

    fn take_table(&mut self, key: &str) -> Result<Dec, SpecError> {
        self.take_table_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn take_table_array(&mut self, key: &str) -> Result<Vec<Dec>, SpecError> {
        match self.table.entries.remove(key) {
            None => Ok(Vec::new()),
            Some((_, Node::ArrayOfTables(tables))) => {
                let path = self.key_path(key);
                Ok(tables
                    .into_iter()
                    .map(|t| Dec::new(path.clone(), t))
                    .collect())
            }
            Some((line, node)) => {
                self.table.entries.insert(key.to_string(), (line, node));
                Err(self.bad(line, key, "expected [[table]] entries"))
            }
        }
    }

    /// Rejects any key the schema did not consume.
    fn finish(self) -> Result<(), SpecError> {
        if let Some((key, (line, _))) = self.table.entries.into_iter().next() {
            return Err(SpecError::UnknownKey {
                line,
                key: if self.path.is_empty() {
                    key
                } else {
                    format!("{}.{key}", self.path)
                },
            });
        }
        Ok(())
    }
}

fn invalid(e: impl std::fmt::Display) -> SpecError {
    SpecError::Invalid {
        message: e.to_string(),
    }
}

fn decode_dram(mut d: Dec) -> Result<DramConfig, SpecError> {
    let dram = DramConfig {
        banks: d.take_u64("banks")?,
        interleave_bytes: d.take_u64("interleave_bytes")?,
        row_bytes: d.take_u64("row_bytes")?,
        row_hit_cycles: d.take_f64("row_hit_cycles")?,
        row_miss_extra_cycles: d.take_f64("row_miss_extra_cycles")?,
        bank_busy_cycles: d.take_f64("bank_busy_cycles")?,
    };
    d.finish()?;
    Ok(dram)
}

fn decode_write_buffer(mut d: Dec) -> Result<WriteBufferConfig, SpecError> {
    let wb = WriteBufferConfig {
        entries: d.take_usize("entries")?,
        entry_bytes: d.take_u64("entry_bytes")?,
        drain_cycles_per_entry: d.take_f64("drain_cycles_per_entry")?,
        coalesce: d.take_bool("coalesce")?,
    };
    d.finish()?;
    Ok(wb)
}

/// Decodes the optional `stream_slots` / `stream_train_length` pair
/// shared by cache levels and the DRAM path.
fn decode_stream(d: &mut Dec) -> Result<Option<StreamConfig>, SpecError> {
    let slots = d.take_u64_opt("stream_slots")?;
    let train = d.take_u64_opt("stream_train_length")?;
    match (slots, train) {
        (None, None) => Ok(None),
        (Some(slots), Some(train)) => Ok(Some(StreamConfig {
            slots: slots as usize,
            train_length: train as u32,
        })),
        _ => Err(SpecError::MissingKey {
            section: d.path.clone(),
            key: "stream_slots and stream_train_length (both or neither)".to_string(),
        }),
    }
}

fn decode_level(mut d: Dec) -> Result<LevelConfig, SpecError> {
    let name = d.take_str("name")?;
    let write_policy = match d.take_str("write_policy")?.as_str() {
        "write-through" => WritePolicy::WriteThrough,
        "write-back" => WritePolicy::WriteBack,
        other => {
            return Err(SpecError::BadValue {
                line: d.table.line,
                key: d.key_path("write_policy"),
                message: format!("expected \"write-through\" or \"write-back\", found {other:?}"),
            });
        }
    };
    let allocate_policy = match d.take_str("allocate_policy")?.as_str() {
        "read" => AllocatePolicy::ReadAllocate,
        "read-write" => AllocatePolicy::ReadWriteAllocate,
        other => {
            return Err(SpecError::BadValue {
                line: d.table.line,
                key: d.key_path("allocate_policy"),
                message: format!("expected \"read\" or \"read-write\", found {other:?}"),
            });
        }
    };
    let level = LevelConfig {
        cache: CacheConfig {
            name,
            capacity_bytes: d.take_u64("capacity_bytes")?,
            line_bytes: d.take_u64("line_bytes")?,
            associativity: d.take_u64("associativity")?,
            write_policy,
            allocate_policy,
        },
        fill_cycles: d.take_f64("fill_cycles")?,
        streamed_fill_cycles: d.take_f64("streamed_fill_cycles")?,
        stream: decode_stream(&mut d)?,
        write_back_cycles: d.take_f64("write_back_cycles")?,
    };
    d.finish()?;
    Ok(level)
}

fn decode_node(root: &mut Dec, node_name: String) -> Result<NodeConfig, SpecError> {
    let mut cpu = root.take_table("cpu")?;
    let cpu_config = CpuConfig {
        clock_mhz: cpu.take_f64("clock_mhz")?,
        load_issue_cycles: cpu.take_f64("load_issue_cycles")?,
        store_issue_cycles: cpu.take_f64("store_issue_cycles")?,
        loop_overhead_cycles: cpu.take_f64("loop_overhead_cycles")?,
        miss_overlap: cpu.take_f64("miss_overlap")?,
    };
    cpu.finish()?;

    let levels = root
        .take_table_array("level")?
        .into_iter()
        .map(decode_level)
        .collect::<Result<Vec<_>, _>>()?;

    let dram = decode_dram(root.take_table("dram")?)?;

    let mut path = root.take_table("dram_path")?;
    let dram_streamed_line_cycles = path.take_f64("streamed_line_cycles")?;
    let dram_store_word_cycles = path.take_f64("store_word_cycles")?;
    let dram_contention = path.take_f64_opt("contention")?.unwrap_or(1.0);
    let dram_stream_contention = path.take_f64_opt("stream_contention")?.unwrap_or(1.0);
    let dram_stream = decode_stream(&mut path)?;
    path.finish()?;

    let write_buffer = match root.take_table_opt("write_buffer")? {
        Some(d) => Some(decode_write_buffer(d)?),
        None => None,
    };

    Ok(NodeConfig {
        name: node_name,
        cpu: cpu_config,
        hierarchy: HierarchyConfig {
            levels,
            dram,
            dram_stream,
            dram_streamed_line_cycles,
            dram_store_word_cycles,
            write_buffer,
            dram_contention,
            dram_stream_contention,
        },
    })
}

fn decode_link(d: &mut Dec) -> Result<LinkConfig, SpecError> {
    Ok(LinkConfig {
        cycles_per_byte: d.take_f64("link_cycles_per_byte")?,
        per_hop_cycles: d.take_f64("link_per_hop_cycles")?,
    })
}

fn decode_ni_loss(mut d: Dec) -> Result<NiLossConfig, SpecError> {
    let loss = NiLossConfig {
        loss_probability: d.take_f64("loss_probability")?,
        timeout_cycles: d.take_f64("timeout_cycles")?,
        backoff_multiplier: d.take_f64("backoff_multiplier")?,
        max_retries: d.take_u32("max_retries")?,
        seed: d.take_u64("seed")?,
    };
    d.finish()?;
    Ok(loss)
}

/// Parses a spec document into a [`MachineSpec`].
///
/// # Errors
///
/// Returns a structured [`SpecError`] for syntax errors, unknown or missing
/// keys, values of the wrong type, or a machine description a component
/// `validate()` rejects.
pub(crate) fn parse_spec(text: &str) -> Result<MachineSpec, SpecError> {
    let mut root = Dec::new("", parse_document(text)?);
    let name = root.take_str("name")?;
    let model = root.take_str("model")?;
    let summary = root.take_str_opt("summary")?.unwrap_or_default();
    let aliases = root.take_str_array_opt("aliases")?.unwrap_or_default();
    let display = root.take_str_opt("display")?;
    let node_name = root
        .take_str_opt("node_name")?
        .unwrap_or_else(|| name.clone());

    let calibration_tolerance = match root.take_table_opt("calibration")? {
        None => None,
        Some(mut cal) => {
            let tol = cal.take_f64("tolerance")?;
            cal.finish()?;
            Some(tol)
        }
    };

    // Optional fault sections (present when a degraded spec was serialized).
    let (bus_jitter, ni_loss) = match root.take_table_opt("faults")? {
        None => (None, None),
        Some(mut faults) => {
            let jitter = match faults.take_table_opt("bus_jitter")? {
                None => None,
                Some(mut j) => {
                    let jitter = BusJitterConfig {
                        amplitude_bus_cycles: j.take_f64("amplitude_bus_cycles")?,
                        seed: j.take_u64("seed")?,
                    };
                    j.finish()?;
                    Some(jitter)
                }
            };
            let loss = match faults.take_table_opt("ni_loss")? {
                None => None,
                Some(d) => Some(decode_ni_loss(d)?),
            };
            faults.finish()?;
            (jitter, loss)
        }
    };

    let kind = match model.as_str() {
        "smp" => {
            let node = decode_node(&mut root, node_name)?;
            let mut smp = root.take_table("smp")?;
            let nodes = smp.take_usize("nodes")?;
            smp.finish()?;
            let mut bus = root.take_table("bus")?;
            let bus_config = BusConfig {
                bus_clock_mhz: bus.take_f64("bus_clock_mhz")?,
                cpu_clock_mhz: bus
                    .take_f64_opt("cpu_clock_mhz")?
                    .unwrap_or(node.cpu.clock_mhz),
                width_bytes: bus.take_u64("width_bytes")?,
                arbitration_bus_cycles: bus.take_f64("arbitration_bus_cycles")?,
                snoop_bus_cycles: bus.take_f64("snoop_bus_cycles")?,
                burst: bus.take_bool("burst")?,
            };
            bus.finish()?;
            let mut protocol = root.take_table("protocol")?;
            let protocol_config = ProtocolConfig {
                read_overhead_cycles: protocol.take_f64("read_overhead_cycles")?,
                cache_to_cache_cycles: protocol.take_f64("cache_to_cache_cycles")?,
                pull_overlap: protocol.take_f64("pull_overlap")?,
            };
            protocol.finish()?;
            let home_dram = decode_dram(root.take_table("home_dram")?)?;
            if ni_loss.is_some() {
                return Err(SpecError::Invalid {
                    message: "[faults.ni_loss] does not apply to smp machines".to_string(),
                });
            }
            let smp = SmpConfig {
                nodes,
                node,
                bus: bus_config,
                protocol: protocol_config,
                home_dram,
            };
            smp.validate().map_err(invalid)?;
            if let Some(j) = &bus_jitter {
                j.validate().map_err(invalid)?;
            }
            SpecKind::Smp { smp, bus_jitter }
        }
        "torus" => {
            let node = decode_node(&mut root, node_name)?;
            let mut remote = root.take_table("remote")?;
            let link = decode_link(&mut remote)?;
            let hops = remote.take_u32("hops")?;
            let header_bytes = remote.take_u64("header_bytes")?;
            let mut ni = remote.take_table("ni")?;
            let ni_config = T3dNiConfig {
                message: MessageCostModel {
                    per_message_cycles: ni.take_f64("per_message_cycles")?,
                    per_byte_cycles: ni.take_f64("per_byte_cycles")?,
                    partner_switch_cycles: ni.take_f64("partner_switch_cycles")?,
                },
                remote_load_round_trip_cycles: ni.take_f64("round_trip_cycles")?,
                prefetch_fifo_depth: ni.take_usize("prefetch_fifo_depth")?,
                shared_by_node_pair: ni.take_bool("shared_by_node_pair")?,
            };
            ni.finish()?;
            let dest_write = decode_write_buffer(remote.take_table("dest_write")?)?;
            let dest_dram = decode_dram(remote.take_table("dest_dram")?)?;
            remote.finish()?;
            if bus_jitter.is_some() {
                return Err(SpecError::Invalid {
                    message: "[faults.bus_jitter] does not apply to torus machines".to_string(),
                });
            }
            let params = T3dRemoteParams {
                ni: ni_config,
                link,
                header_bytes,
                dest_write,
                dest_dram,
                hops,
            };
            node.validate().map_err(invalid)?;
            params.ni.validate().map_err(invalid)?;
            params.link.validate().map_err(invalid)?;
            params.dest_write.validate().map_err(invalid)?;
            params.dest_dram.validate().map_err(invalid)?;
            if let Some(l) = &ni_loss {
                l.validate().map_err(invalid)?;
            }
            SpecKind::Torus {
                node,
                remote: params,
                ni_loss,
            }
        }
        "eregs" => {
            let node = decode_node(&mut root, node_name)?;
            let mut remote = root.take_table("remote")?;
            let link = decode_link(&mut remote)?;
            let hops = remote.take_u32("hops")?;
            let block_cycles = remote.take_f64("block_cycles")?;
            let block_bytes = remote.take_u64("block_bytes")?;
            let strided_word_extra_cycles = remote.take_f64("strided_word_extra_cycles")?;
            let mut eregs = remote.take_table("eregs")?;
            let eregs_config = ERegistersConfig {
                count: eregs.take_usize("count")?,
                word_issue_cycles: eregs.take_f64("word_issue_cycles")?,
                call_setup_cycles: eregs.take_f64("call_setup_cycles")?,
                round_trip_cycles: eregs.take_f64("round_trip_cycles")?,
            };
            eregs.finish()?;
            let dest_word_banks = decode_dram(remote.take_table("dest_dram")?)?;
            remote.finish()?;
            if bus_jitter.is_some() {
                return Err(SpecError::Invalid {
                    message: "[faults.bus_jitter] does not apply to eregs machines".to_string(),
                });
            }
            let params = T3eRemoteParams {
                eregs: eregs_config,
                link,
                block_cycles,
                block_bytes,
                strided_word_extra_cycles,
                dest_word_banks,
                hops,
            };
            node.validate().map_err(invalid)?;
            params.eregs.validate().map_err(invalid)?;
            params.link.validate().map_err(invalid)?;
            params.dest_word_banks.validate().map_err(invalid)?;
            if params.block_bytes == 0 || params.block_cycles < 0.0 {
                return Err(SpecError::Invalid {
                    message: "remote block path must have positive block size and \
                              non-negative cycles"
                        .to_string(),
                });
            }
            if let Some(l) = &ni_loss {
                l.validate().map_err(invalid)?;
            }
            SpecKind::Eregs {
                node,
                remote: params,
                ni_loss,
            }
        }
        "node" => {
            let node = decode_node(&mut root, node_name)?;
            node.validate().map_err(invalid)?;
            if bus_jitter.is_some() || ni_loss.is_some() {
                return Err(SpecError::Invalid {
                    message: "[faults] sections do not apply to node machines".to_string(),
                });
            }
            SpecKind::Node { node }
        }
        other => {
            return Err(SpecError::BadValue {
                line: 1,
                key: "model".to_string(),
                message: format!(
                    "expected \"smp\", \"torus\", \"eregs\" or \"node\", found {other:?}"
                ),
            });
        }
    };
    root.finish()?;

    // The three paper machines keep their canonical ids (so displays,
    // shmem call overheads and FFT models recognize them); every other
    // spec is identified by its label alone.
    let id = match (name.to_ascii_lowercase().as_str(), &kind) {
        ("dec8400", SpecKind::Smp { .. }) => MachineId::Dec8400,
        ("t3d", SpecKind::Torus { .. }) => MachineId::CrayT3d,
        ("t3e", SpecKind::Eregs { .. }) => MachineId::CrayT3e,
        _ => MachineId::Custom,
    };

    Ok(MachineSpec::from_parts(
        id,
        name,
        display,
        aliases,
        summary,
        calibration_tolerance,
        kind,
    ))
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Shortest round-trip rendering of an f64 (Rust's `{:?}`).
fn num(v: f64) -> String {
    format!("{v:?}")
}

struct Writer {
    out: String,
}

impl Writer {
    fn kv(&mut self, key: &str, value: impl std::fmt::Display) {
        let _ = writeln!(self.out, "{key} = {value}");
    }

    fn kv_str(&mut self, key: &str, value: &str) {
        let _ = writeln!(self.out, "{key} = \"{value}\"");
    }

    fn header(&mut self, name: &str) {
        let _ = writeln!(self.out, "\n[{name}]");
    }

    fn array_header(&mut self, name: &str) {
        let _ = writeln!(self.out, "\n[[{name}]]");
    }

    fn dram(&mut self, section: &str, d: &DramConfig) {
        self.header(section);
        self.kv("banks", d.banks);
        self.kv("interleave_bytes", d.interleave_bytes);
        self.kv("row_bytes", d.row_bytes);
        self.kv("row_hit_cycles", num(d.row_hit_cycles));
        self.kv("row_miss_extra_cycles", num(d.row_miss_extra_cycles));
        self.kv("bank_busy_cycles", num(d.bank_busy_cycles));
    }

    fn write_buffer(&mut self, section: &str, wb: &WriteBufferConfig) {
        self.header(section);
        self.kv("entries", wb.entries);
        self.kv("entry_bytes", wb.entry_bytes);
        self.kv("drain_cycles_per_entry", num(wb.drain_cycles_per_entry));
        self.kv("coalesce", wb.coalesce);
    }

    fn stream(&mut self, stream: &Option<StreamConfig>) {
        if let Some(s) = stream {
            self.kv("stream_slots", s.slots);
            self.kv("stream_train_length", s.train_length);
        }
    }

    fn node(&mut self, node: &NodeConfig) {
        self.header("cpu");
        self.kv("clock_mhz", num(node.cpu.clock_mhz));
        self.kv("load_issue_cycles", num(node.cpu.load_issue_cycles));
        self.kv("store_issue_cycles", num(node.cpu.store_issue_cycles));
        self.kv("loop_overhead_cycles", num(node.cpu.loop_overhead_cycles));
        self.kv("miss_overlap", num(node.cpu.miss_overlap));

        for level in &node.hierarchy.levels {
            self.array_header("level");
            self.kv_str("name", &level.cache.name);
            self.kv("capacity_bytes", level.cache.capacity_bytes);
            self.kv("line_bytes", level.cache.line_bytes);
            self.kv("associativity", level.cache.associativity);
            self.kv_str(
                "write_policy",
                match level.cache.write_policy {
                    WritePolicy::WriteThrough => "write-through",
                    WritePolicy::WriteBack => "write-back",
                },
            );
            self.kv_str(
                "allocate_policy",
                match level.cache.allocate_policy {
                    AllocatePolicy::ReadAllocate => "read",
                    AllocatePolicy::ReadWriteAllocate => "read-write",
                },
            );
            self.kv("fill_cycles", num(level.fill_cycles));
            self.kv("streamed_fill_cycles", num(level.streamed_fill_cycles));
            self.kv("write_back_cycles", num(level.write_back_cycles));
            self.stream(&level.stream);
        }

        self.dram("dram", &node.hierarchy.dram);

        self.header("dram_path");
        self.kv(
            "streamed_line_cycles",
            num(node.hierarchy.dram_streamed_line_cycles),
        );
        self.kv(
            "store_word_cycles",
            num(node.hierarchy.dram_store_word_cycles),
        );
        self.kv("contention", num(node.hierarchy.dram_contention));
        self.kv(
            "stream_contention",
            num(node.hierarchy.dram_stream_contention),
        );
        self.stream(&node.hierarchy.dram_stream);

        if let Some(wb) = &node.hierarchy.write_buffer {
            self.write_buffer("write_buffer", wb);
        }
    }

    fn link(&mut self, link: &LinkConfig) {
        self.kv("link_cycles_per_byte", num(link.cycles_per_byte));
        self.kv("link_per_hop_cycles", num(link.per_hop_cycles));
    }

    fn ni_loss(&mut self, loss: &Option<NiLossConfig>) {
        if let Some(l) = loss {
            self.header("faults.ni_loss");
            self.kv("loss_probability", num(l.loss_probability));
            self.kv("timeout_cycles", num(l.timeout_cycles));
            self.kv("backoff_multiplier", num(l.backoff_multiplier));
            self.kv("max_retries", l.max_retries);
            self.kv("seed", l.seed);
        }
    }
}

/// Serializes a spec to the dialect [`parse_spec`] reads.
pub(crate) fn render_spec(spec: &MachineSpec) -> String {
    let mut w = Writer { out: String::new() };
    w.kv_str("name", spec.label());
    w.kv_str(
        "model",
        match spec.kind() {
            SpecKind::Smp { .. } => "smp",
            SpecKind::Torus { .. } => "torus",
            SpecKind::Eregs { .. } => "eregs",
            SpecKind::Node { .. } => "node",
        },
    );
    if !spec.summary().is_empty() {
        w.kv_str("summary", spec.summary());
    }
    if !spec.aliases().is_empty() {
        let list = spec
            .aliases()
            .iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(", ");
        w.kv("aliases", format!("[{list}]"));
    }
    if let Some(display) = spec.display() {
        w.kv_str("display", display);
    }
    let node_name = match spec.kind() {
        SpecKind::Smp { smp, .. } => &smp.node.name,
        SpecKind::Torus { node, .. } | SpecKind::Eregs { node, .. } | SpecKind::Node { node } => {
            &node.name
        }
    };
    if node_name != spec.label() {
        w.kv_str("node_name", node_name);
    }
    if let Some(tol) = spec.calibration_tolerance() {
        w.header("calibration");
        w.kv("tolerance", num(tol));
    }
    match spec.kind() {
        SpecKind::Smp { smp, bus_jitter } => {
            w.node(&smp.node);
            w.header("smp");
            w.kv("nodes", smp.nodes);
            w.header("bus");
            w.kv("bus_clock_mhz", num(smp.bus.bus_clock_mhz));
            if smp.bus.cpu_clock_mhz != smp.node.cpu.clock_mhz {
                w.kv("cpu_clock_mhz", num(smp.bus.cpu_clock_mhz));
            }
            w.kv("width_bytes", smp.bus.width_bytes);
            w.kv(
                "arbitration_bus_cycles",
                num(smp.bus.arbitration_bus_cycles),
            );
            w.kv("snoop_bus_cycles", num(smp.bus.snoop_bus_cycles));
            w.kv("burst", smp.bus.burst);
            w.header("protocol");
            w.kv(
                "read_overhead_cycles",
                num(smp.protocol.read_overhead_cycles),
            );
            w.kv(
                "cache_to_cache_cycles",
                num(smp.protocol.cache_to_cache_cycles),
            );
            w.kv("pull_overlap", num(smp.protocol.pull_overlap));
            w.dram("home_dram", &smp.home_dram);
            if let Some(j) = bus_jitter {
                w.header("faults.bus_jitter");
                w.kv("amplitude_bus_cycles", num(j.amplitude_bus_cycles));
                w.kv("seed", j.seed);
            }
        }
        SpecKind::Torus {
            node,
            remote,
            ni_loss,
        } => {
            w.node(node);
            w.header("remote");
            w.kv("hops", remote.hops);
            w.kv("header_bytes", remote.header_bytes);
            w.link(&remote.link);
            w.header("remote.ni");
            w.kv(
                "per_message_cycles",
                num(remote.ni.message.per_message_cycles),
            );
            w.kv("per_byte_cycles", num(remote.ni.message.per_byte_cycles));
            w.kv(
                "partner_switch_cycles",
                num(remote.ni.message.partner_switch_cycles),
            );
            w.kv(
                "round_trip_cycles",
                num(remote.ni.remote_load_round_trip_cycles),
            );
            w.kv("prefetch_fifo_depth", remote.ni.prefetch_fifo_depth);
            w.kv("shared_by_node_pair", remote.ni.shared_by_node_pair);
            w.write_buffer("remote.dest_write", &remote.dest_write);
            w.dram("remote.dest_dram", &remote.dest_dram);
            w.ni_loss(ni_loss);
        }
        SpecKind::Eregs {
            node,
            remote,
            ni_loss,
        } => {
            w.node(node);
            w.header("remote");
            w.kv("hops", remote.hops);
            w.kv("block_cycles", num(remote.block_cycles));
            w.kv("block_bytes", remote.block_bytes);
            w.kv(
                "strided_word_extra_cycles",
                num(remote.strided_word_extra_cycles),
            );
            w.link(&remote.link);
            w.header("remote.eregs");
            w.kv("count", remote.eregs.count);
            w.kv("word_issue_cycles", num(remote.eregs.word_issue_cycles));
            w.kv("call_setup_cycles", num(remote.eregs.call_setup_cycles));
            w.kv("round_trip_cycles", num(remote.eregs.round_trip_cycles));
            w.dram("remote.dest_dram", &remote.dest_word_banks);
            w.ni_loss(ni_loss);
        }
        SpecKind::Node { node } => {
            w.node(node);
        }
    }
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL_NODE: &str = r#"
name = "mini"
model = "node"
summary = "a minimal single-node machine"

[cpu]
clock_mhz = 100.0
load_issue_cycles = 1.0
store_issue_cycles = 1.0
loop_overhead_cycles = 0.0
miss_overlap = 1.0

[[level]]
name = "L1"
capacity_bytes = 8192
line_bytes = 32
associativity = 1
write_policy = "write-through"
allocate_policy = "read"
fill_cycles = 4.0
streamed_fill_cycles = 2.0
write_back_cycles = 2.0

[dram]
banks = 4
interleave_bytes = 64
row_bytes = 4096
row_hit_cycles = 16.0
row_miss_extra_cycles = 24.0
bank_busy_cycles = 8.0

[dram_path]
streamed_line_cycles = 8.0
store_word_cycles = 6.0
"#;

    #[test]
    fn minimal_node_parses_and_round_trips() {
        let spec = parse_spec(MINIMAL_NODE).unwrap();
        assert_eq!(spec.label(), "mini");
        assert_eq!(spec.id(), MachineId::Custom);
        let text = render_spec(&spec);
        let back = parse_spec(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(render_spec(&back), text, "serializer must be a fixpoint");
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let text = MINIMAL_NODE.replace("banks = 4", "banks = 4  # four banks");
        assert!(parse_spec(&text).is_ok());
    }

    #[test]
    fn unknown_keys_are_structured_errors() {
        let text = MINIMAL_NODE.replace("banks = 4", "banks = 4\nfrobs = 2");
        match parse_spec(&text) {
            Err(SpecError::UnknownKey { key, line }) => {
                assert_eq!(key, "dram.frobs");
                assert!(line > 0);
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn missing_keys_are_structured_errors() {
        let text = MINIMAL_NODE.replace("banks = 4\n", "");
        match parse_spec(&text) {
            Err(SpecError::MissingKey { section, key }) => {
                assert_eq!(section, "dram");
                assert_eq!(key, "banks");
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_values_are_invalid() {
        // 3 banks is not a power of two: decoded fine, rejected by validate.
        let text = MINIMAL_NODE.replace("banks = 4", "banks = 3");
        match parse_spec(&text) {
            Err(SpecError::Invalid { message }) => {
                assert!(message.contains("power of two"), "{message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn type_errors_are_structured() {
        let text = MINIMAL_NODE.replace("banks = 4", "banks = \"four\"");
        assert!(matches!(parse_spec(&text), Err(SpecError::BadValue { .. })));
        let text = MINIMAL_NODE.replace("banks = 4", "banks = 4.5");
        assert!(matches!(parse_spec(&text), Err(SpecError::BadValue { .. })));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        for (bad, expect) in [
            ("name = \"x\"\nmodel", "key = value"),
            ("name = \"x\"\n[unclosed", "unterminated"),
            ("name = \"x\"\nname = \"y\"", "duplicate"),
        ] {
            match parse_spec(bad) {
                Err(SpecError::Parse { line, message }) => {
                    assert_eq!(line, 2, "{bad:?}");
                    assert!(message.contains(expect), "{message:?}");
                }
                other => panic!("{bad:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_model_is_rejected() {
        let text = MINIMAL_NODE.replace("model = \"node\"", "model = \"quantum\"");
        match parse_spec(&text) {
            Err(SpecError::BadValue { key, message, .. }) => {
                assert_eq!(key, "model");
                assert!(message.contains("quantum"));
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn builtin_specs_round_trip_through_the_loader() {
        for spec in [
            MachineSpec::dec8400(),
            MachineSpec::t3d(),
            MachineSpec::t3e(),
        ] {
            let text = render_spec(&spec);
            let back = parse_spec(&text).expect("builtin specs must serialize parseably");
            assert_eq!(back, spec, "round trip must be exact");
            assert_eq!(back.spec_hash(), spec.spec_hash());
        }
    }

    #[test]
    fn degraded_specs_round_trip_with_fault_sections() {
        use crate::FaultPlan;
        let plan = FaultPlan::new(7, 0.6).unwrap();
        for spec in [
            MachineSpec::t3d(),
            MachineSpec::t3e(),
            MachineSpec::dec8400(),
        ] {
            let degraded = spec.with_faults(&plan).unwrap();
            let text = render_spec(&degraded);
            let back = parse_spec(&text).unwrap();
            assert_eq!(back, degraded);
            assert_ne!(
                degraded.spec_hash(),
                parse_spec(&render_spec(&MachineSpec::t3d()))
                    .unwrap()
                    .spec_hash(),
                "fault sections must change the spec hash"
            );
        }
    }
}
