//! The unified probe API: one request type, one entry point, one answer.
//!
//! Historically every layer picked its probe path through a different
//! mechanism: callers chose among seven per-op [`Machine`] methods, the
//! warm path was selected by handing a [`crate::WarmState`] to the sweep
//! loop, memoization switched off through a hand-built engine's missing
//! spec hash, and the `--cold` escape hatch was a process global. This
//! module collapses that tier selection into data:
//!
//! * a [`ProbeRequest`] names the operation, the grid cell, the measurement
//!   caps and the requested [`ProbeTier`];
//! * a [`ProbeBackend`] answers requests through a single
//!   `probe(&ProbeRequest)` entry point — implemented by the simulator
//!   engine ([`crate::TransferEngine`]), the warm wrapper
//!   ([`WarmBackend`]), the probe memo ([`Memoized`]), and the analytic
//!   fast path (`gasnub-analytic`'s tiered machine);
//! * a [`ProbeOutcome`] carries the measurement plus which path produced
//!   it, so tiered dispatch is observable instead of implicit.
//!
//! The per-op [`Machine`] methods remain as the backend SPI (every backend
//! ultimately implements them), and [`dispatch`] is the one place that maps
//! a request onto them.

use gasnub_memsim::SimError;

use crate::limits::MeasureLimits;
use crate::machine::{Machine, Measurement};
use crate::memo::{self, MemoKey};
use crate::spec::SpawnEngine;
use crate::warm::WarmState;

/// Which probe an outcome answers. Also the operation half of every memo
/// key (see [`crate::memo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOp {
    /// [`Machine::local_load`] — strided Load-Sum.
    LocalLoad,
    /// [`Machine::local_store`] — strided Store-Constant.
    LocalStore,
    /// [`Machine::local_copy`] — copy with a load and a store stride.
    LocalCopy,
    /// [`Machine::local_gather`] — indexed loads over a permutation.
    LocalGather,
    /// [`Machine::remote_load`] — pure remote loads (the 8400's pull).
    RemoteLoad,
    /// [`Machine::remote_fetch`] — strided remote loads, contiguous local
    /// stores.
    RemoteFetch,
    /// [`Machine::remote_deposit`] — contiguous local loads, strided remote
    /// stores.
    RemoteDeposit,
}

impl ProbeOp {
    /// Short ASCII label ("local_load", "remote_fetch", ...), matching the
    /// `probe.*` event names of the trace layer.
    pub fn label(self) -> &'static str {
        match self {
            ProbeOp::LocalLoad => "local_load",
            ProbeOp::LocalStore => "local_store",
            ProbeOp::LocalCopy => "local_copy",
            ProbeOp::LocalGather => "local_gather",
            ProbeOp::RemoteLoad => "remote_load",
            ProbeOp::RemoteFetch => "remote_fetch",
            ProbeOp::RemoteDeposit => "remote_deposit",
        }
    }

    /// Whether this operation crosses the machine's remote path.
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            ProbeOp::RemoteLoad | ProbeOp::RemoteFetch | ProbeOp::RemoteDeposit
        )
    }
}

/// Which execution tier a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeTier {
    /// Analytic answer where the model is trusted for the cell, full
    /// simulation everywhere else (fault plans, recorders, boundary cells).
    Auto,
    /// Force the analytic model, trusted or not (model validation).
    Analytic,
    /// Force the full cycle-accounting simulation (the historical default).
    #[default]
    Simulate,
}

impl ProbeTier {
    /// Parses the CLI spelling (`auto` / `analytic` / `sim`).
    pub fn parse(label: &str) -> Option<ProbeTier> {
        match label {
            "auto" => Some(ProbeTier::Auto),
            "analytic" => Some(ProbeTier::Analytic),
            "sim" => Some(ProbeTier::Simulate),
            _ => None,
        }
    }

    /// The CLI spelling of this tier.
    pub fn label(self) -> &'static str {
        match self {
            ProbeTier::Auto => "auto",
            ProbeTier::Analytic => "analytic",
            ProbeTier::Simulate => "sim",
        }
    }
}

/// Where a probe backend's results come from — the machine half of every
/// memo key.
///
/// Engines built from a [`crate::MachineSpec`] (including every
/// registry-resolved zoo machine) carry the spec's identity hash and
/// memoize; engines assembled by hand carry no description a key could
/// name, so the memo is bypassed *explicitly* here rather than through the
/// old missing-hash special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Built from a spec with this [`crate::MachineSpec::spec_hash`].
    Spec(u64),
    /// Assembled outside `MachineSpec::build` (test scaffolding, ad-hoc
    /// wrappers); results have no stable identity to memoize under.
    HandBuilt,
}

impl Provenance {
    /// The spec hash, when the backend has one.
    pub fn spec_hash(self) -> Option<u64> {
        match self {
            Provenance::Spec(hash) => Some(hash),
            Provenance::HandBuilt => None,
        }
    }
}

/// One probe, fully described: the operation, the grid cell, the
/// measurement caps and the execution tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRequest {
    /// The operation to measure.
    pub op: ProbeOp,
    /// Working set in bytes.
    pub ws_bytes: u64,
    /// Primary stride in 64-bit words (load stride for copies; ignored by
    /// gathers).
    pub stride: u64,
    /// Secondary stride (store stride for [`ProbeOp::LocalCopy`]; 0
    /// elsewhere).
    pub stride2: u64,
    /// Measurement caps to install before probing; `None` keeps the
    /// backend's current caps.
    pub limits: Option<MeasureLimits>,
    /// The execution tier. Backends without an analytic model treat every
    /// tier as [`ProbeTier::Simulate`].
    pub tier: ProbeTier,
}

impl ProbeRequest {
    /// A request for `op` at `(ws_bytes, stride)` with default tier
    /// ([`ProbeTier::Simulate`]) and the backend's current caps.
    pub fn new(op: ProbeOp, ws_bytes: u64, stride: u64) -> Self {
        ProbeRequest {
            op,
            ws_bytes,
            stride,
            stride2: if op == ProbeOp::LocalCopy { 1 } else { 0 },
            limits: None,
            tier: ProbeTier::Simulate,
        }
    }

    /// Sets the secondary (store) stride of a copy.
    #[must_use]
    pub fn with_stride2(mut self, stride2: u64) -> Self {
        self.stride2 = stride2;
        self
    }

    /// Sets the measurement caps to install before probing.
    #[must_use]
    pub fn with_limits(mut self, limits: MeasureLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Sets the execution tier.
    #[must_use]
    pub fn with_tier(mut self, tier: ProbeTier) -> Self {
        self.tier = tier;
        self
    }

    /// The memo key of this request for a backend of the given provenance,
    /// or `None` when the result must not be memoized: a hand-built
    /// backend, unresolved measurement caps, or the `--cold` escape hatch.
    pub(crate) fn memo_key(&self, provenance: Provenance) -> Option<MemoKey> {
        if gasnub_memsim::cold_path() {
            return None;
        }
        let limits = self.limits?;
        Some(MemoKey {
            spec_hash: provenance.spec_hash()?,
            op: self.op,
            ws_bytes: self.ws_bytes,
            stride: self.stride,
            stride2: self.stride2,
            max_measure_words: limits.max_measure_words,
            max_prime_words: limits.max_prime_words,
        })
    }
}

/// Which path answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbePath {
    /// The closed-form analytic model.
    Analytic,
    /// The cycle-accounting simulator (directly or via the memo).
    Simulated,
}

/// The answer to one [`ProbeRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The measurement; `None` when the machine does not support the
    /// operation (deterministic — support depends on the machine and the
    /// op, never on the cell).
    pub measurement: Option<Measurement>,
    /// Which path produced it.
    pub path: ProbePath,
}

impl ProbeOutcome {
    /// A simulator-produced outcome.
    pub fn simulated(measurement: Option<Measurement>) -> Self {
        ProbeOutcome {
            measurement,
            path: ProbePath::Simulated,
        }
    }

    /// An analytically produced outcome.
    pub fn analytic(measurement: Option<Measurement>) -> Self {
        ProbeOutcome {
            measurement,
            path: ProbePath::Analytic,
        }
    }

    /// The measured bandwidth, `None` when the op is unsupported.
    pub fn mb_s(&self) -> Option<f64> {
        self.measurement.map(|m| m.mb_s)
    }
}

/// One probe entry point for every backend.
///
/// Implementations: [`crate::TransferEngine`] (full simulation),
/// [`WarmBackend`] (simulation on a reused engine), [`Memoized`]
/// (memo-fronted delegation keyed by [`Provenance`]), and the analytic
/// crate's tiered machine (closed-form fast path with simulation
/// fallback).
pub trait ProbeBackend {
    /// Answers one request.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the backend cannot assemble an engine for
    /// the request (spawn failures on lazy backends).
    fn probe(&mut self, req: &ProbeRequest) -> Result<ProbeOutcome, SimError>;
}

/// Maps a request onto a [`Machine`]'s per-op probe methods — the single
/// place the request/SPI translation lives. Installs the request's
/// measurement caps first (when it carries any).
pub fn dispatch<M: Machine + ?Sized>(machine: &mut M, req: &ProbeRequest) -> ProbeOutcome {
    if let Some(limits) = req.limits {
        if machine.limits() != limits {
            machine.set_limits(limits);
        }
    }
    let measurement = match req.op {
        ProbeOp::LocalLoad => Some(machine.local_load(req.ws_bytes, req.stride)),
        ProbeOp::LocalStore => Some(machine.local_store(req.ws_bytes, req.stride)),
        ProbeOp::LocalCopy => {
            Some(machine.local_copy(req.ws_bytes, req.stride, req.stride2.max(1)))
        }
        ProbeOp::LocalGather => Some(machine.local_gather(req.ws_bytes)),
        ProbeOp::RemoteLoad => machine.remote_load(req.ws_bytes, req.stride),
        ProbeOp::RemoteFetch => machine.remote_fetch(req.ws_bytes, req.stride),
        ProbeOp::RemoteDeposit => machine.remote_deposit(req.ws_bytes, req.stride),
    };
    ProbeOutcome::simulated(measurement)
}

/// The warm execution path as a backend: one lazily spawned engine, reused
/// across requests (see [`crate::warm`] for the state-validity rules).
#[derive(Debug)]
pub struct WarmBackend<'a, S: SpawnEngine> {
    spawner: &'a S,
    warm: WarmState<S::Engine>,
}

impl<'a, S: SpawnEngine> WarmBackend<'a, S> {
    /// A cold backend bound to `spawner`; the first probe spawns.
    pub fn new(spawner: &'a S) -> Self {
        WarmBackend {
            spawner,
            warm: WarmState::new(),
        }
    }

    /// Discards the held engine after a state-incompatible transition (an
    /// unwound probe).
    pub fn reset(&mut self) {
        self.warm.reset();
    }
}

impl<S: SpawnEngine> ProbeBackend for WarmBackend<'_, S> {
    fn probe(&mut self, req: &ProbeRequest) -> Result<ProbeOutcome, SimError> {
        Ok(dispatch(self.warm.engine(self.spawner)?, req))
    }
}

/// The probe memo as a backend: serves repeat requests from the per-process
/// table, delegates misses, and keys everything off an explicit
/// [`Provenance`] — so registry-resolved zoo machines memoize while
/// hand-built scaffolding deterministically bypasses.
#[derive(Debug)]
pub struct Memoized<B> {
    inner: B,
    provenance: Provenance,
}

impl<B: ProbeBackend> Memoized<B> {
    /// Fronts `inner` with the memo under `provenance`. The inner backend
    /// must be a pure simulation path (memoized analytic answers would
    /// conflate the tiers).
    pub fn new(inner: B, provenance: Provenance) -> Self {
        Memoized { inner, provenance }
    }

    /// The provenance the memo keys off.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }
}

impl<B: ProbeBackend> ProbeBackend for Memoized<B> {
    fn probe(&mut self, req: &ProbeRequest) -> Result<ProbeOutcome, SimError> {
        let key = req.memo_key(self.provenance);
        if let Some(k) = &key {
            if let Some(hit) = memo::lookup(k) {
                return Ok(ProbeOutcome::simulated(hit));
            }
        }
        let outcome = self.inner.probe(req)?;
        if let Some(k) = key {
            memo::insert(k, outcome.measurement);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    #[test]
    fn tier_labels_round_trip() {
        for tier in [ProbeTier::Auto, ProbeTier::Analytic, ProbeTier::Simulate] {
            assert_eq!(ProbeTier::parse(tier.label()), Some(tier));
        }
        assert_eq!(ProbeTier::parse("warp"), None);
        assert_eq!(ProbeTier::default(), ProbeTier::Simulate);
    }

    #[test]
    fn dispatch_matches_direct_probe_calls() {
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut a = spec.spawn_engine().unwrap();
        let mut b = spec.spawn_engine().unwrap();
        let req = ProbeRequest::new(ProbeOp::LocalLoad, 64 << 10, 8);
        let via_request = a.probe(&req).unwrap();
        let direct = b.local_load(64 << 10, 8);
        assert_eq!(via_request.path, ProbePath::Simulated);
        assert_eq!(
            via_request.measurement.unwrap().cycles.to_bits(),
            direct.cycles.to_bits()
        );
    }

    #[test]
    fn dispatch_applies_request_limits() {
        let spec = MachineSpec::t3e();
        let mut engine = spec.spawn_engine().unwrap();
        let req =
            ProbeRequest::new(ProbeOp::LocalStore, 32 << 10, 2).with_limits(MeasureLimits::fast());
        let _ = engine.probe(&req).unwrap();
        assert_eq!(engine.limits(), MeasureLimits::fast());
    }

    #[test]
    fn copy_requests_carry_both_strides() {
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut via = spec.spawn_engine().unwrap();
        let mut direct = spec.spawn_engine().unwrap();
        let req = ProbeRequest::new(ProbeOp::LocalCopy, 1 << 20, 1).with_stride2(16);
        let a = via.probe(&req).unwrap().measurement.unwrap();
        let b = direct.local_copy(1 << 20, 1, 16);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    }

    #[test]
    fn warm_backend_reuses_one_engine() {
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut warm = WarmBackend::new(&spec);
        let req = ProbeRequest::new(ProbeOp::LocalLoad, 16 << 10, 2);
        let a = warm.probe(&req).unwrap();
        let b = warm.probe(&req).unwrap();
        assert_eq!(
            a.measurement.unwrap().cycles.to_bits(),
            b.measurement.unwrap().cycles.to_bits()
        );
    }

    #[test]
    fn memoized_backend_serves_repeats_from_the_table() {
        let _guard = memo::TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = MachineSpec::t3e().with_limits(MeasureLimits::fast());
        let provenance = Provenance::Spec(spec.spec_hash());
        let mut backend = Memoized::new(WarmBackend::new(&spec), provenance);
        // An off-grid cell no other test probes.
        let req =
            ProbeRequest::new(ProbeOp::LocalLoad, 96 << 10, 5).with_limits(MeasureLimits::fast());
        let first = backend.probe(&req).unwrap();
        let (hits0, _) = memo::stats();
        let second = backend.probe(&req).unwrap();
        let (hits1, _) = memo::stats();
        assert!(hits1 > hits0, "repeat must be a memo hit");
        assert_eq!(
            first.measurement.unwrap().cycles.to_bits(),
            second.measurement.unwrap().cycles.to_bits()
        );
    }

    #[test]
    fn hand_built_provenance_bypasses_the_memo() {
        let req =
            ProbeRequest::new(ProbeOp::LocalLoad, 1 << 20, 1).with_limits(MeasureLimits::fast());
        assert!(req.memo_key(Provenance::HandBuilt).is_none());
        assert!(req.memo_key(Provenance::Spec(42)).is_some());
        // Requests without resolved caps never memoize either: the result
        // would depend on backend state the key cannot see.
        let uncapped = ProbeRequest::new(ProbeOp::LocalLoad, 1 << 20, 1);
        assert!(uncapped.memo_key(Provenance::Spec(42)).is_none());
    }
}
