//! The calibration table: every bandwidth figure the paper's prose quotes,
//! with the probe that reproduces it and the accepted tolerance.
//!
//! `EXPERIMENTS.md` is generated from this table (paper vs. measured), and
//! the machines test suite asserts every row. Tolerances are relative and
//! deliberately loose for values the paper itself gives approximately
//! ("about", "up to"), tighter for exact plateau numbers.

use gasnub_memsim::SimError;

use crate::machine::{Machine, MachineId};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Which micro-benchmark probe reproduces a quoted number.
///
/// `ws` is the working set in bytes; strides are in 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field meanings are uniform across variants (see above)
pub enum Probe {
    /// Local Load-Sum at (working set bytes, stride words).
    LocalLoad { ws: u64, stride: u64 },
    /// Local copy at (working set, load stride, store stride).
    LocalCopy {
        ws: u64,
        load_stride: u64,
        store_stride: u64,
    },
    /// Remote pure loads (8400 pull).
    RemoteLoad { ws: u64, stride: u64 },
    /// Remote fetch transfer.
    RemoteFetch { ws: u64, stride: u64 },
    /// Remote deposit transfer.
    RemoteDeposit { ws: u64, stride: u64 },
}

/// One calibration target: a number quoted in the paper.
#[derive(Debug, Clone)]
pub struct CalibrationPoint {
    /// Stable identifier, e.g. `"dec8400.l1_plateau"`.
    pub id: &'static str,
    /// Which machine the number belongs to.
    pub machine: MachineId,
    /// Where in the paper the number is quoted.
    pub source: &'static str,
    /// The paper's value in MB/s.
    pub paper_mb_s: f64,
    /// Accepted relative deviation (0.25 = ±25%).
    pub tolerance: f64,
    /// The probe that reproduces it.
    pub probe: Probe,
}

impl CalibrationPoint {
    /// Runs the probe against `machine`, returning the measured MB/s.
    ///
    /// # Panics
    ///
    /// Panics if the probe is not supported by the machine (table error) or
    /// if `machine` is not the machine this point targets; use
    /// [`CalibrationPoint::try_measure`] to handle those cases gracefully.
    pub fn measure(&self, machine: &mut dyn Machine) -> f64 {
        match self.try_measure(machine) {
            Ok(mb_s) => mb_s,
            Err(e) => panic!("calibration point {}: {e}", self.id),
        }
    }

    /// Runs the probe against `machine`, returning the measured MB/s.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] when `machine` is not the machine
    /// this point targets or does not support the probed remote operation.
    pub fn try_measure(&self, machine: &mut dyn Machine) -> Result<f64, SimError> {
        if machine.id() != self.machine {
            return Err(SimError::unsupported(format!(
                "calibration point {} targets {}, not {}",
                self.id,
                self.machine,
                machine.id()
            )));
        }
        let unsupported =
            || SimError::unsupported(format!("calibration point {}: probe unsupported", self.id));
        let mb_s = match self.probe {
            Probe::LocalLoad { ws, stride } => machine.local_load(ws, stride).mb_s,
            Probe::LocalCopy {
                ws,
                load_stride,
                store_stride,
            } => machine.local_copy(ws, load_stride, store_stride).mb_s,
            Probe::RemoteLoad { ws, stride } => {
                machine
                    .remote_load(ws, stride)
                    .ok_or_else(unsupported)?
                    .mb_s
            }
            Probe::RemoteFetch { ws, stride } => {
                machine
                    .remote_fetch(ws, stride)
                    .ok_or_else(unsupported)?
                    .mb_s
            }
            Probe::RemoteDeposit { ws, stride } => {
                machine
                    .remote_deposit(ws, stride)
                    .ok_or_else(unsupported)?
                    .mb_s
            }
        };
        Ok(mb_s)
    }

    /// Whether `measured` is within tolerance of the paper's value.
    pub fn accepts(&self, measured: f64) -> bool {
        (measured - self.paper_mb_s).abs() / self.paper_mb_s <= self.tolerance
    }
}

/// The full calibration table (see the paper sections cited per row).
pub fn calibration_table() -> Vec<CalibrationPoint> {
    use MachineId::*;
    vec![
        // ------------------------------------------------ DEC 8400, §5.1
        CalibrationPoint {
            id: "dec8400.l1_plateau",
            machine: Dec8400,
            source: "§5.1: \"Maximum memory performance for loads is approximately 1100 MByte/s in small working sets\"",
            paper_mb_s: 1100.0,
            tolerance: 0.15,
            probe: Probe::LocalLoad { ws: 4 * KB, stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.l2_plateau",
            machine: Dec8400,
            source: "§5.1: 700 MByte/s plateau (Fig. 1)",
            paper_mb_s: 700.0,
            tolerance: 0.15,
            probe: Probe::LocalLoad { ws: 64 * KB, stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.l3_contiguous",
            machine: Dec8400,
            source: "§5.1: \"For loads out of L3 cache, we experience the peak of 600 MByte/s for contiguous accesses\"",
            paper_mb_s: 600.0,
            tolerance: 0.2,
            probe: Probe::LocalLoad { ws: 2 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.l3_strided",
            machine: Dec8400,
            source: "§5.1: \"strided accesses fall down to 120 MByte/s\" out of L3",
            paper_mb_s: 120.0,
            tolerance: 0.25,
            probe: Probe::LocalLoad { ws: 2 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "dec8400.dram_contiguous",
            machine: Dec8400,
            source: "§5.5: \"the DEC 8400 achieves just 150 MByte/s for contiguous loads out of DRAM main memory\"",
            paper_mb_s: 150.0,
            tolerance: 0.2,
            probe: Probe::LocalLoad { ws: 32 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.dram_strided",
            machine: Dec8400,
            source: "§5.1/Fig. 1: 28 MByte/s plateau for strided DRAM accesses",
            paper_mb_s: 28.0,
            tolerance: 0.35,
            probe: Probe::LocalLoad { ws: 32 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "dec8400.remote_contiguous",
            machine: Dec8400,
            source: "§5.2: \"The maximal performance for remote memory accesses is down to 140 MByte/s\"",
            paper_mb_s: 140.0,
            tolerance: 0.25,
            probe: Probe::RemoteLoad { ws: 32 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.remote_strided",
            machine: Dec8400,
            source: "§5.2: \"For strided accesses out of DRAM, performance is about 22 MByte/s\"",
            paper_mb_s: 22.0,
            tolerance: 0.35,
            probe: Probe::RemoteLoad { ws: 32 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "dec8400.copy_contiguous",
            machine: Dec8400,
            source: "§6.1: \"A DEC 8400 can copy contiguous blocks at about 57 MByte/s\"",
            paper_mb_s: 57.0,
            tolerance: 0.35,
            probe: Probe::LocalCopy { ws: 32 * MB, load_stride: 1, store_stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.copy_strided",
            machine: Dec8400,
            source: "§6.1: \"and strided data at about 18 MByte/s\"",
            paper_mb_s: 18.0,
            tolerance: 0.5,
            probe: Probe::LocalCopy { ws: 32 * MB, load_stride: 16, store_stride: 1 },
        },
        CalibrationPoint {
            id: "dec8400.remote_copy_strided",
            machine: Dec8400,
            source: "§6.2: \"on a DEC 8400 the bandwidth of such transfers is limited to about 20 MByte/s\"",
            paper_mb_s: 20.0,
            tolerance: 0.4,
            probe: Probe::RemoteFetch { ws: 32 * MB, stride: 16 },
        },
        // ------------------------------------------------ Cray T3D
        CalibrationPoint {
            id: "t3d.l1_plateau",
            machine: CrayT3d,
            source: "Fig. 3: ~600 MByte/s L1 plateau (one 64-bit operand per 150 MHz clock, compiler-limited)",
            paper_mb_s: 600.0,
            tolerance: 0.15,
            probe: Probe::LocalLoad { ws: 4 * KB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3d.dram_contiguous",
            machine: CrayT3d,
            source: "§5.3: contiguous DRAM loads ~30% faster than the 8400's 150 MByte/s (Fig. 3 slope)",
            paper_mb_s: 195.0,
            tolerance: 0.2,
            probe: Probe::LocalLoad { ws: 8 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3d.dram_strided",
            machine: CrayT3d,
            source: "§5.5: \"43 MByte/s on the T3D\" for strided DRAM accesses",
            paper_mb_s: 43.0,
            tolerance: 0.3,
            probe: Probe::LocalLoad { ws: 8 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "t3d.copy_contiguous",
            machine: CrayT3d,
            source: "§6.1: \"able to copy contiguous memory blocks at a 100 MByte/s\"",
            paper_mb_s: 100.0,
            tolerance: 0.25,
            probe: Probe::LocalCopy { ws: 8 * MB, load_stride: 1, store_stride: 1 },
        },
        CalibrationPoint {
            id: "t3d.copy_strided_stores",
            machine: CrayT3d,
            source: "§6.1: \"well pipelined writes through a write-back queue allow strided stores at up to 70 MByte/s\"",
            paper_mb_s: 70.0,
            tolerance: 0.3,
            probe: Probe::LocalCopy { ws: 8 * MB, load_stride: 1, store_stride: 16 },
        },
        CalibrationPoint {
            id: "t3d.deposit_strided",
            machine: CrayT3d,
            source: "§6.2: \"If copy transfers of transposes are properly optimized using strided stores on the T3D, they can be performed at about 55 MByte/s\"",
            paper_mb_s: 55.0,
            tolerance: 0.35,
            probe: Probe::RemoteDeposit { ws: 8 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "t3d.deposit_contiguous",
            machine: CrayT3d,
            source: "Fig. 13: contiguous deposits at ~120 MByte/s (T3D and 8400 \"handle contiguous data at about the same speed\")",
            paper_mb_s: 120.0,
            tolerance: 0.3,
            probe: Probe::RemoteDeposit { ws: 8 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3d.fetch_contiguous",
            machine: CrayT3d,
            source: "Fig. 4: shmem_iget transfers well below deposits (~25-30 MByte/s peak)",
            paper_mb_s: 27.0,
            tolerance: 0.4,
            probe: Probe::RemoteFetch { ws: 8 * MB, stride: 1 },
        },
        // ------------------------------------------------ Cray T3E
        CalibrationPoint {
            id: "t3e.l1_plateau",
            machine: CrayT3e,
            source: "§5.5: T3E L1/L2 resemble the DEC 8400 (same 21164)",
            paper_mb_s: 1100.0,
            tolerance: 0.15,
            probe: Probe::LocalLoad { ws: 4 * KB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3e.l2_plateau",
            machine: CrayT3e,
            source: "§5.5: T3E L2 plateau ≈ 8400 L2 plateau (700 MByte/s)",
            paper_mb_s: 700.0,
            tolerance: 0.15,
            probe: Probe::LocalLoad { ws: 64 * KB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3e.dram_contiguous",
            machine: CrayT3e,
            source: "§5.5: \"the T3E node is capable of load transfers of up to 430 MByte/s\"",
            paper_mb_s: 430.0,
            tolerance: 0.2,
            probe: Probe::LocalLoad { ws: 8 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3e.dram_strided",
            machine: CrayT3e,
            source: "§5.5: \"stuck at about 42 MByte/s on the T3E\"",
            paper_mb_s: 42.0,
            tolerance: 0.3,
            probe: Probe::LocalLoad { ws: 8 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "t3e.remote_contiguous_put",
            machine: CrayT3e,
            source: "§5.6: \"Both modes of operation perform impressively at 350 MByte/sec for contiguous data transfers\"",
            paper_mb_s: 350.0,
            tolerance: 0.15,
            probe: Probe::RemoteDeposit { ws: 8 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3e.remote_contiguous_get",
            machine: CrayT3e,
            source: "§5.6: same 350 MByte/s through shmem_iget",
            paper_mb_s: 350.0,
            tolerance: 0.15,
            probe: Probe::RemoteFetch { ws: 8 * MB, stride: 1 },
        },
        CalibrationPoint {
            id: "t3e.remote_strided_fetch",
            machine: CrayT3e,
            source: "§6.2: \"falls down to 140 MByte/s or 70 MByte/s for strided accesses (depending on how the transfer is programmed)\" — fetch side",
            paper_mb_s: 140.0,
            tolerance: 0.25,
            probe: Probe::RemoteFetch { ws: 8 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "t3e.remote_strided_deposit",
            machine: CrayT3e,
            source: "§6.2: same quote — deposit side (70 MByte/s, even strides)",
            paper_mb_s: 70.0,
            tolerance: 0.25,
            probe: Probe::RemoteDeposit { ws: 8 * MB, stride: 16 },
        },
        CalibrationPoint {
            id: "t3e.copy_contiguous",
            machine: CrayT3e,
            source: "§6.1: \"The T3E has an impressive copy bandwidth of 200 MByte/s for contiguous blocks\"",
            paper_mb_s: 200.0,
            tolerance: 0.3,
            probe: Probe::LocalCopy { ws: 8 * MB, load_stride: 1, store_stride: 1 },
        },
    ]
}

/// Runs every calibration point for `machine`'s table entries, returning
/// `(point, measured)` pairs.
pub fn run_calibration(machine: &mut dyn Machine) -> Vec<(CalibrationPoint, f64)> {
    let id = machine.id();
    calibration_table()
        .into_iter()
        .filter(|p| p.machine == id)
        .map(|p| {
            let measured = p.measure(machine);
            (p, measured)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::MeasureLimits;
    use crate::{Dec8400, T3d, T3e};

    fn check(machine: &mut dyn Machine) {
        machine.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        });
        let mut failures = Vec::new();
        for (point, measured) in run_calibration(machine) {
            if !point.accepts(measured) {
                failures.push(format!(
                    "{}: paper {} MB/s, measured {:.1} MB/s (tolerance ±{:.0}%)",
                    point.id,
                    point.paper_mb_s,
                    measured,
                    point.tolerance * 100.0
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "calibration failures:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn dec8400_calibration() {
        check(&mut Dec8400::new());
    }

    #[test]
    fn t3d_calibration() {
        check(&mut T3d::new());
    }

    #[test]
    fn t3e_calibration() {
        check(&mut T3e::new());
    }

    #[test]
    fn table_covers_all_machines() {
        let table = calibration_table();
        for id in [MachineId::Dec8400, MachineId::CrayT3d, MachineId::CrayT3e] {
            assert!(
                table.iter().filter(|p| p.machine == id).count() >= 8,
                "{id} under-covered"
            );
        }
    }

    #[test]
    fn accepts_is_relative() {
        let p = &calibration_table()[0];
        assert!(p.accepts(p.paper_mb_s));
        assert!(p.accepts(p.paper_mb_s * (1.0 + p.tolerance * 0.99)));
        assert!(!p.accepts(p.paper_mb_s * (1.0 + p.tolerance * 1.5)));
    }
}
