//! The DEC AlphaServer 8400 model.
//!
//! A four-processor, bus-based, cache-coherent SMP (§3.1). Local accesses
//! run through one node's three-level hierarchy; remote transfers are
//! coherent consumer *pulls* over the shared bus ("The DEC 8400 does not
//! have support for pushing data into memory or caches of a remote
//! processor", §5.2), supplied either cache-to-cache by the dirty producer
//! or by home memory.
//!
//! The probe loops live in [`crate::engine::TransferEngine`]; this type is
//! a thin shell that keeps the calibrated constructors and ablations.

use gasnub_coherence::smp::{SmpConfig, SnoopingSmp};
use gasnub_faults::FaultPlan;

use crate::engine::{delegate_machine, TransferEngine};
use crate::params;
use crate::spec::MachineSpec;

/// The DEC 8400 machine model.
#[derive(Debug)]
pub struct Dec8400 {
    engine: TransferEngine,
}

impl Dec8400 {
    /// Builds the paper's four-processor 8400 with default limits.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in parameter table is inconsistent (a bug).
    pub fn new() -> Self {
        Self::with_config(params::dec8400_smp())
            .expect("built-in DEC 8400 parameters must validate")
    }

    /// Builds an 8400 variant from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error.
    pub fn with_config(config: SmpConfig) -> Result<Self, gasnub_memsim::ConfigError> {
        Ok(Dec8400 {
            engine: MachineSpec::dec8400_with(config).build()?,
        })
    }

    /// Builds the §5.1 variant where all four processors access DRAM
    /// simultaneously (-8% contiguous, -25% strided).
    pub fn new_contended() -> Self {
        let mut cfg = params::dec8400_smp();
        let (stream, random) = params::dec8400_contention_factors();
        cfg.node.hierarchy.dram_stream_contention = stream;
        cfg.node.hierarchy.dram_contention = random;
        Self::with_config(cfg).expect("built-in contended parameters must validate")
    }

    /// Builds an 8400 degraded by `plan`: the shared system bus picks up
    /// the plan's deterministic arbitration-stall jitter (a degraded
    /// arbiter, or agents outside the model competing for the bus). Same
    /// plan, same cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`gasnub_memsim::SimError`] when a derived configuration
    /// fails validation.
    pub fn with_faults(plan: &FaultPlan) -> Result<Self, gasnub_memsim::SimError> {
        Ok(Dec8400 {
            engine: MachineSpec::dec8400().with_faults(plan)?.build()?,
        })
    }

    /// Builds an 8400 with a different processor count (the paper "repeated
    /// some measurements on an eight processor system"; the series tops out
    /// at 12 processors).
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error (e.g. zero processors).
    pub fn with_processors(nodes: usize) -> Result<Self, gasnub_memsim::ConfigError> {
        let mut cfg = params::dec8400_smp();
        cfg.nodes = nodes;
        Self::with_config(cfg)
    }

    /// Access to the underlying SMP system (for coherence-level tests).
    pub fn smp(&self) -> &SnoopingSmp {
        self.engine
            .smp_system()
            .expect("the 8400 backend is always bus-based")
    }
}

impl Default for Dec8400 {
    fn default() -> Self {
        Self::new()
    }
}

delegate_machine!(Dec8400);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::MeasureLimits;
    use crate::machine::Machine;

    const MB: u64 = 1024 * 1024;
    const KB: u64 = 1024;

    fn machine() -> Dec8400 {
        let mut m = Dec8400::new();
        m.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 2 * 1024 * 1024,
        });
        m
    }

    #[test]
    fn l1_plateau_near_1100() {
        let m = machine().local_load(4 * KB, 1);
        assert!(
            (m.mb_s - 1100.0).abs() / 1100.0 < 0.15,
            "L1 plateau: got {}",
            m.mb_s
        );
    }

    #[test]
    fn l2_plateau_near_700() {
        let m = machine().local_load(64 * KB, 1);
        assert!(
            (m.mb_s - 700.0).abs() / 700.0 < 0.15,
            "L2 plateau: got {}",
            m.mb_s
        );
    }

    #[test]
    fn l3_contiguous_near_600_and_strided_near_120() {
        let mut mach = machine();
        let contig = mach.local_load(2 * MB, 1);
        assert!(
            (contig.mb_s - 600.0).abs() / 600.0 < 0.2,
            "L3 contig: got {}",
            contig.mb_s
        );
        let strided = mach.local_load(2 * MB, 16);
        assert!(
            (strided.mb_s - 120.0).abs() / 120.0 < 0.25,
            "L3 strided: got {}",
            strided.mb_s
        );
    }

    #[test]
    fn dram_contiguous_near_150_and_strided_near_28() {
        let mut mach = machine();
        let contig = mach.local_load(32 * MB, 1);
        assert!(
            (contig.mb_s - 150.0).abs() / 150.0 < 0.2,
            "DRAM contig: got {}",
            contig.mb_s
        );
        let strided = mach.local_load(32 * MB, 16);
        assert!(
            (strided.mb_s - 28.0).abs() / 28.0 < 0.35,
            "DRAM strided: got {}",
            strided.mb_s
        );
    }

    #[test]
    fn remote_pull_near_140_contig_22_strided() {
        let mut mach = machine();
        let contig = mach.remote_load(32 * MB, 1).unwrap();
        assert!(
            (contig.mb_s - 140.0).abs() / 140.0 < 0.25,
            "remote contig: got {}",
            contig.mb_s
        );
        let strided = mach.remote_load(32 * MB, 16).unwrap();
        assert!(
            (strided.mb_s - 22.0).abs() / 22.0 < 0.35,
            "remote strided: got {}",
            strided.mb_s
        );
    }

    #[test]
    fn remote_is_order_of_magnitude_below_local_peak() {
        let mut mach = machine();
        let local_peak = mach.local_load(4 * KB, 1).mb_s;
        let remote_peak = mach.remote_load(32 * MB, 1).unwrap().mb_s;
        assert!(
            local_peak / remote_peak > 5.0,
            "{local_peak} vs {remote_peak}"
        );
    }

    #[test]
    fn local_copy_near_57_contig() {
        let m = machine().local_copy(32 * MB, 1, 1);
        assert!(
            (m.mb_s - 57.0).abs() / 57.0 < 0.35,
            "copy contig: got {}",
            m.mb_s
        );
    }

    #[test]
    fn no_deposit_support() {
        assert!(machine().remote_deposit(MB, 1).is_none());
    }

    #[test]
    fn eight_processor_system_measures_identically_when_idle() {
        // §2: "We used a four processor system and also repeated some
        // measurements on an eight processor system." With the other
        // processors idle, per-processor results match.
        let mut four = machine();
        let mut eight = Dec8400::with_processors(8).unwrap();
        eight.set_limits(four.limits());
        let a = four.local_load(32 * MB, 1).mb_s;
        let b = eight.local_load(32 * MB, 1).mb_s;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        let ra = four.remote_load(32 * MB, 16).unwrap().mb_s;
        let rb = eight.remote_load(32 * MB, 16).unwrap().mb_s;
        assert!((ra - rb).abs() / ra < 0.05, "{ra} vs {rb}");
        assert!(Dec8400::with_processors(0).is_err());
    }

    #[test]
    fn contended_variant_is_slower_mostly_for_strided() {
        let mut idle = machine();
        let mut loaded = Dec8400::new_contended();
        loaded.set_limits(idle.limits());
        let idle_contig = idle.local_load(32 * MB, 1).mb_s;
        let load_contig = loaded.local_load(32 * MB, 1).mb_s;
        let idle_strided = idle.local_load(32 * MB, 16).mb_s;
        let load_strided = loaded.local_load(32 * MB, 16).mb_s;
        let contig_drop = 1.0 - load_contig / idle_contig;
        let strided_drop = 1.0 - load_strided / idle_strided;
        assert!(
            contig_drop > 0.0 && contig_drop < 0.15,
            "contig drop {contig_drop}"
        );
        assert!(
            strided_drop > 0.15 && strided_drop < 0.40,
            "strided drop {strided_drop}"
        );
    }
}
