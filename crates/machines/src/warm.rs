//! Warm probe-execution state: a spawned engine reused across grid cells.
//!
//! Spawning a [`crate::TransferEngine`] validates and allocates the whole
//! simulation substrate (cache ways, DRAM banks, NI pipelines) — up to
//! milliseconds for large SMP configurations, which dominates small cells.
//! A [`WarmState`] amortizes that cost over a *run* of cells (a chain of
//! working sets at fixed stride, see the sweep layer): the engine is
//! spawned once and reused for every cell of the run.
//!
//! ## State-validity rules
//!
//! Reuse is sound because every probe begins by flushing all mutable state,
//! and the flushed state is exactly the just-constructed state — the
//! invariant `TransferEngine::flush_all` documents and the determinism
//! suite asserts. Consequently a warm engine is state-*compatible* with any
//! next cell, and results are bit-identical to a fresh-engine-per-cell
//! sweep. The transitions that *are* state-incompatible, and therefore
//! require [`WarmState::reset`]:
//!
//! * a probe **unwound** (cancellation, a panic mid-probe): the engine may
//!   hold arbitrary partial state and, unlike the flush at probe start,
//!   nothing re-establishes the constructed-state invariant for the
//!   *observability* layer (a recorder's ring buffer can hold a partial
//!   event stream). `reset()` discards the engine; the next
//!   [`WarmState::engine`] call spawns a fresh one.
//! * the **spawner changes** (a different machine spec): a `WarmState` is
//!   bound to one spawner; use one per machine.
//!
//! Identical repeated cells are not re-executed at all on the warm path —
//! the per-process memo (see [`crate::memo`]) serves them before the
//! engine is touched.

use gasnub_memsim::SimError;

use crate::spec::SpawnEngine;

/// A lazily spawned, reusable probe engine (see the module docs).
#[derive(Debug)]
pub struct WarmState<E> {
    engine: Option<E>,
    spawns: u64,
}

impl<E> Default for WarmState<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WarmState<E> {
    /// An empty (cold) state; the first [`WarmState::engine`] call spawns.
    pub fn new() -> Self {
        WarmState {
            engine: None,
            spawns: 0,
        }
    }

    /// The warm engine, spawning one from `spawner` on first use (and after
    /// a [`WarmState::reset`]).
    ///
    /// # Errors
    ///
    /// Propagates the spawner's [`SimError`] when construction fails.
    pub fn engine<S>(&mut self, spawner: &S) -> Result<&mut E, SimError>
    where
        S: SpawnEngine<Engine = E>,
    {
        if self.engine.is_none() {
            self.engine = Some(spawner.spawn_engine()?);
            self.spawns += 1;
        }
        Ok(self.engine.as_mut().expect("engine just spawned"))
    }

    /// Discards the held engine after a state-incompatible transition (an
    /// unwound probe). The next [`WarmState::engine`] call spawns fresh.
    pub fn reset(&mut self) {
        self.engine = None;
    }

    /// Whether an engine is currently held.
    pub fn is_warm(&self) -> bool {
        self.engine.is_some()
    }

    /// How many engines this state has spawned (diagnostics: a healthy run
    /// spawns once; every unwind adds one).
    pub fn spawns(&self) -> u64 {
        self.spawns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::spec::MachineSpec;
    use crate::MeasureLimits;

    #[test]
    fn spawns_once_and_reuses() {
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut warm = WarmState::new();
        assert!(!warm.is_warm());
        let a = warm.engine(&spec).unwrap().local_load(16 << 10, 2);
        assert!(warm.is_warm());
        let b = warm.engine(&spec).unwrap().local_load(16 << 10, 2);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
        assert_eq!(warm.spawns(), 1);
    }

    #[test]
    fn reset_respawns() {
        let spec = MachineSpec::t3e().with_limits(MeasureLimits::fast());
        let mut warm = WarmState::new();
        let _ = warm.engine(&spec).unwrap();
        warm.reset();
        assert!(!warm.is_warm());
        let _ = warm.engine(&spec).unwrap();
        assert_eq!(warm.spawns(), 2);
    }

    #[test]
    fn warm_probes_match_fresh_engines_across_a_run() {
        // A run: fixed stride, ascending working sets; the warm engine must
        // reproduce fresh-engine measurements bit for bit.
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let mut warm = WarmState::new();
        for ws in [8 << 10, 64 << 10, 1 << 20] {
            let w = warm.engine(&spec).unwrap().local_load(ws, 8);
            // The recorder keeps the fresh engine off the memo, so this is
            // a genuine recomputation, not a table hit.
            let mut fresh = spec.spawn_engine().unwrap();
            fresh.set_recorder(Box::new(gasnub_trace::RingRecorder::new(4)));
            let f = fresh.local_load(ws, 8);
            assert_eq!(w.cycles.to_bits(), f.cycles.to_bits(), "ws {ws}");
        }
    }
}
