//! The shared transfer engine: one implementation of the paper's probes.
//!
//! Historically each machine model (`dec8400.rs`, `t3d.rs`, `t3e.rs`,
//! `custom.rs`) carried its own copy of the local load/store/copy/gather
//! loops and its own fetch/deposit inner loop. [`TransferEngine`] collapses
//! them: it owns *all* mutable simulation state for one run (memory
//! hierarchy, NI pipelines, link occupancy, destination DRAM rows) and
//! implements every probe once, parameterized by the backend an immutable
//! [`crate::spec::MachineSpec`] describes. Engines are cheap to construct,
//! `Send`, and independent — a parallel sweep builds one per grid cell.

use gasnub_coherence::smp::SnoopingSmp;
use gasnub_interconnect::link::Link;
use gasnub_interconnect::ni::{ERegisters, T3dNi};
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::stats::RunStats;
use gasnub_memsim::trace::{CopyPass, StorePass, StridedOrder, StridedPass};
use gasnub_memsim::write_buffer::WriteBuffer;
use gasnub_memsim::WORD_BYTES;
use gasnub_trace::{CounterSet, Event, NullRecorder, Recorder};

use crate::cancel::{CancelToken, Guarded};
use crate::limits::MeasureLimits;
use crate::machine::{Machine, MachineId, Measurement};
use crate::memo::{self, MemoKey};
use crate::params::{T3dRemoteParams, T3eRemoteParams};
use crate::probe::{dispatch, ProbeBackend, ProbeOp, ProbeOutcome, ProbeRequest, Provenance};
use gasnub_memsim::SimError;

/// Byte offset separating source and destination regions.
pub(crate) const DST_REGION: u64 = 1 << 32;

/// Destination PE number used for partner-switch accounting.
const DEST_PE: u32 = 2;

/// Working-set size in 64-bit words (at least one word).
///
/// The single shared copy of the helper every machine model used to
/// duplicate.
pub fn words_of(ws_bytes: u64) -> u64 {
    (ws_bytes / WORD_BYTES).max(1)
}

/// Which side of a strided word transfer serializes on memory banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Puts: incoming words are stored in arrival order, so destination
    /// bank busy windows stall the stream.
    Deposit,
    /// Gets: the deeply pipelined E-register reads reorder across banks.
    Fetch,
}

/// Mutable state of the T3D remote path (fetch/deposit circuitry).
#[derive(Debug)]
pub(crate) struct T3dRemotePath {
    params: T3dRemoteParams,
    ni: T3dNi,
    link: Link,
    /// Destination-side write path driven by the deposit circuitry:
    /// coalescing window per the WBQ shape, service time from the
    /// destination DRAM's row state (large-stride deposits reopen a row
    /// per word).
    dest_write: WriteBuffer,
    dest_dram: Dram,
    dest_busy_until: f64,
    /// Remote source DRAM as read by the fetch circuitry.
    remote_dram: Dram,
}

impl T3dRemotePath {
    pub(crate) fn new(
        params: T3dRemoteParams,
        ni: T3dNi,
        link: Link,
        dest_write: WriteBuffer,
        dest_dram: Dram,
        remote_dram: Dram,
    ) -> Self {
        T3dRemotePath {
            params,
            ni,
            link,
            dest_write,
            dest_dram,
            dest_busy_until: 0.0,
            remote_dram,
        }
    }

    fn reset(&mut self) {
        self.ni.reset();
        self.link.reset();
        self.dest_write.reset();
        self.dest_dram.reset();
        self.dest_busy_until = 0.0;
        self.remote_dram.reset();
    }

    /// Runs a deposit transfer: contiguous local loads feed strided remote
    /// stores, coalesced into packets by the write-back queue and injected
    /// by the NI.
    fn run_deposit(
        &mut self,
        engine: &mut MemoryEngine,
        limits: MeasureLimits,
        clock: f64,
        ws_bytes: u64,
        stride: u64,
        cancel: Option<CancelToken>,
    ) -> Measurement {
        engine.flush();
        self.reset();
        let words = words_of(ws_bytes);
        let measured = limits.measure_words(words);

        // Prime the source region so cache effects along the working-set
        // axis match the paper's methodology. The warm path skips the
        // per-access statistics the next line discards anyway.
        let prime = StridedPass::new(0, words, 1).take(limits.prime_words(words) as usize);
        if gasnub_memsim::cold_path() {
            let _ = engine.run_trace(prime);
        } else {
            engine.prime_trace(prime);
        }
        // Scope the hierarchy's statistics window to the measured pass (the
        // window is observational only; costs are unaffected).
        engine.hierarchy_mut().reset_window_stats();

        let cpu = engine.cpu().clone();
        let window = self.params.dest_write.entry_bytes;
        let header = self.params.header_bytes;
        let hops = self.params.hops;
        let coalesce = self.params.dest_write.coalesce;

        let mut now = engine.now();
        let start = now;
        let mut open_window: Option<u64> = None;
        let mut open_bytes: u64 = 0;

        for (k, idx) in Guarded::new(StridedOrder::new(words, stride), cancel)
            .take(measured as usize)
            .enumerate()
        {
            // Contiguous local load of the outgoing word.
            let local_addr = k as u64 * WORD_BYTES;
            let load = engine.hierarchy_mut().load(local_addr, now);
            now += cpu.load_issue_cycles + cpu.loop_overhead_cycles + load.cycles;

            // Remote store: coalesce into packets of `window` bytes.
            let remote_addr = DST_REGION + idx * WORD_BYTES;
            now += cpu.store_issue_cycles;
            let this_window = remote_addr / window;
            let coalesced = coalesce && open_window == Some(this_window);
            if coalesced {
                open_bytes += WORD_BYTES;
            } else {
                if open_window.is_some() {
                    now += self.flush_packet(open_bytes + header, hops, now);
                }
                open_window = Some(this_window);
                open_bytes = WORD_BYTES;
                // The deposit circuitry writes one entity into destination
                // DRAM per window; page-mode keeps low-stride deposits
                // cheap, but each large-stride word reopens a row. A busy
                // destination back-pressures the sender.
                let stall = (self.dest_busy_until - now).max(0.0);
                let service = self.dest_dram.access(remote_addr, now + stall).cycles;
                self.dest_busy_until = now + stall + service;
                now += stall;
            }
        }
        if open_window.is_some() {
            now += self.flush_packet(open_bytes + header, hops, now);
        }
        now = now.max(self.dest_busy_until);
        Measurement::new(measured * WORD_BYTES, now - start, clock)
    }

    /// Injects one packet; the sender observes injection cost plus link
    /// back-pressure (transfer itself is fire-and-forget).
    fn flush_packet(&mut self, wire_bytes: u64, hops: u32, now: f64) -> f64 {
        let inject = self.ni.deposit_packet(wire_bytes, DEST_PE);
        let link_total = self.link.send(wire_bytes, hops, now + inject);
        let link_occupancy = self.link.config().transfer_cycles(wire_bytes, hops);
        let link_stall = (link_total - link_occupancy).max(0.0);
        inject + link_stall
    }

    /// Runs a fetch transfer: strided remote loads through the prefetch
    /// FIFO, contiguous local stores through the write-back queue.
    fn run_fetch(
        &mut self,
        engine: &mut MemoryEngine,
        limits: MeasureLimits,
        clock: f64,
        ws_bytes: u64,
        stride: u64,
        cancel: Option<CancelToken>,
    ) -> Measurement {
        engine.flush();
        self.reset();
        let words = words_of(ws_bytes);
        let measured = limits.measure_words(words);
        let cpu = engine.cpu().clone();
        let row_hit = self.remote_dram.config().row_hit_cycles;

        let mut now = engine.now();
        let start = now;
        for (k, idx) in Guarded::new(StridedOrder::new(words, stride), cancel)
            .take(measured as usize)
            .enumerate()
        {
            let remote_addr = idx * WORD_BYTES;
            // Remote load through the FIFO (round trip amortized by depth).
            now += self.ni.fetch_word(now);
            // Extra penalty when the remote DRAM row must be reopened.
            let dram = self.remote_dram.access(remote_addr, now);
            now += (dram.cycles - row_hit).max(0.0) + dram.bank_stall_cycles;
            // Contiguous local store of the fetched word.
            let local_addr = DST_REGION + k as u64 * WORD_BYTES;
            let store = engine.hierarchy_mut().store(local_addr, now);
            now += cpu.store_issue_cycles + cpu.loop_overhead_cycles + store.cycles;
        }
        now += engine.hierarchy_mut().drain_writes(now);
        Measurement::new(measured * WORD_BYTES, now - start, clock)
    }
}

/// Mutable state of the T3E remote path (E-registers + torus link).
#[derive(Debug)]
struct T3eRemotePath {
    params: T3eRemoteParams,
    eregs: ERegisters,
    link: Link,
    /// Destination memory banks as seen by incoming single-word puts.
    dest_banks: Dram,
}

impl T3eRemotePath {
    fn reset(&mut self) {
        self.eregs.reset();
        self.link.reset();
        self.dest_banks.reset();
    }

    /// Runs one remote transfer of `words` words at `stride` through the
    /// E-registers in the given direction. Unit-stride data moves as
    /// coalesced blocks; non-unit strides move single words.
    #[allow(clippy::too_many_arguments)]
    fn run_remote(
        &mut self,
        engine: &mut MemoryEngine,
        limits: MeasureLimits,
        clock: f64,
        ws_bytes: u64,
        stride: u64,
        dir: Direction,
        cancel: Option<CancelToken>,
    ) -> Measurement {
        engine.flush();
        self.reset();
        let words = words_of(ws_bytes);
        let measured = limits.measure_words(words);
        let hops = self.params.hops;

        let mut now = 0.0;
        now += self.eregs.begin_call();
        let start = now;

        if stride == 1 {
            // Block path: the E-registers gather/scatter whole cache-line
            // sized blocks without per-word processor involvement.
            let block_words = self.params.block_bytes / WORD_BYTES;
            let blocks = measured.div_ceil(block_words);
            for b in Guarded::new(0..blocks, cancel) {
                let wire = self.params.block_bytes + WORD_BYTES; // block + address
                let link_total = self.link.send(wire, hops, now);
                let occupancy = self.link.config().transfer_cycles(wire, hops);
                let link_stall = (link_total - occupancy).max(0.0);
                now += self.params.block_cycles + link_stall;
                let _ = b;
            }
        } else {
            for idx in
                Guarded::new(StridedOrder::new(words, stride), cancel).take(measured as usize)
            {
                let word_cost =
                    self.eregs.transfer_word(now) + self.params.strided_word_extra_cycles;
                now += word_cost;
                if dir == Direction::Deposit {
                    // Incoming words commit to destination banks in arrival
                    // order; a busy bank stalls the stream (Fig. 8 ripples).
                    let addr = DST_REGION + idx * WORD_BYTES;
                    let out = self.dest_banks.access(addr, now);
                    now += out.bank_stall_cycles;
                }
            }
        }
        Measurement::new(measured * WORD_BYTES, now - start, clock)
    }
}

/// The remote paths a node-style backend may carry.
#[derive(Debug)]
enum RemotePath {
    /// No remote capability (custom single-node machines).
    None,
    /// T3D fetch/deposit circuitry.
    T3d(Box<T3dRemotePath>),
    /// T3E E-registers.
    T3e(Box<T3eRemotePath>),
}

/// The mutable simulation substrate behind an engine.
#[derive(Debug)]
enum Backend {
    /// Bus-based SMP (DEC 8400): remote transfers are coherent pulls.
    Smp(SnoopingSmp),
    /// Single PE plus an explicit remote path (T3D, T3E, custom nodes).
    Node {
        engine: MemoryEngine,
        remote: RemotePath,
    },
}

/// A per-run transfer engine: all mutable state of one simulated machine.
///
/// Built from a [`crate::spec::MachineSpec`]; implements every probe of the
/// [`Machine`] trait exactly once. The machine wrapper types ([`crate::T3d`]
/// etc.) are thin shells around one of these.
#[derive(Debug)]
pub struct TransferEngine {
    id: MachineId,
    /// Registry label ("t3d", "numa2s", …) reported by [`Machine::label`].
    label: String,
    /// Resolved display name ("Cray T3D", "reference custom node", …).
    display: String,
    clock_mhz: f64,
    gather_seed: u64,
    limits: MeasureLimits,
    backend: Backend,
    /// Event sink of the observability layer. The default [`NullRecorder`]
    /// is disabled, so probes skip the whole harvest path.
    recorder: Box<dyn Recorder>,
    /// Counters harvested by the most recent observed probe.
    last_counters: Option<CounterSet>,
    /// Cooperative cancellation token consulted inside probe loops. `None`
    /// (the default) means probes run to completion.
    cancel: Option<CancelToken>,
    /// Where this engine's results come from — the machine half of every
    /// memo key (see [`crate::memo`]). Engines built outside
    /// [`crate::spec::MachineSpec::build`] are [`Provenance::HandBuilt`]
    /// and bypass memoization explicitly.
    provenance: Provenance,
}

impl TransferEngine {
    pub(crate) fn new_smp(
        id: MachineId,
        smp: SnoopingSmp,
        gather_seed: u64,
        limits: MeasureLimits,
    ) -> Self {
        let clock_mhz = smp.config().node.cpu.clock_mhz;
        TransferEngine {
            id,
            label: id.label().to_string(),
            display: id.to_string(),
            clock_mhz,
            gather_seed,
            limits,
            backend: Backend::Smp(smp),
            recorder: Box::new(NullRecorder),
            last_counters: None,
            cancel: None,
            provenance: Provenance::HandBuilt,
        }
    }

    pub(crate) fn new_torus(
        id: MachineId,
        engine: MemoryEngine,
        path: T3dRemotePath,
        gather_seed: u64,
        limits: MeasureLimits,
    ) -> Self {
        let clock_mhz = engine.cpu().clock_mhz;
        TransferEngine {
            id,
            label: id.label().to_string(),
            display: id.to_string(),
            clock_mhz,
            gather_seed,
            limits,
            backend: Backend::Node {
                engine,
                remote: RemotePath::T3d(Box::new(path)),
            },
            recorder: Box::new(NullRecorder),
            last_counters: None,
            cancel: None,
            provenance: Provenance::HandBuilt,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_eregs(
        id: MachineId,
        engine: MemoryEngine,
        params: T3eRemoteParams,
        eregs: ERegisters,
        link: Link,
        dest_banks: Dram,
        gather_seed: u64,
        limits: MeasureLimits,
    ) -> Self {
        let clock_mhz = engine.cpu().clock_mhz;
        TransferEngine {
            id,
            label: id.label().to_string(),
            display: id.to_string(),
            clock_mhz,
            gather_seed,
            limits,
            backend: Backend::Node {
                engine,
                remote: RemotePath::T3e(Box::new(T3eRemotePath {
                    params,
                    eregs,
                    link,
                    dest_banks,
                })),
            },
            recorder: Box::new(NullRecorder),
            last_counters: None,
            cancel: None,
            provenance: Provenance::HandBuilt,
        }
    }

    pub(crate) fn new_node(
        id: MachineId,
        engine: MemoryEngine,
        gather_seed: u64,
        limits: MeasureLimits,
    ) -> Self {
        let clock_mhz = engine.cpu().clock_mhz;
        TransferEngine {
            id,
            label: id.label().to_string(),
            display: id.to_string(),
            clock_mhz,
            gather_seed,
            limits,
            backend: Backend::Node {
                engine,
                remote: RemotePath::None,
            },
            recorder: Box::new(NullRecorder),
            last_counters: None,
            cancel: None,
            provenance: Provenance::HandBuilt,
        }
    }

    /// Installs the spec's identity: the registry label this engine reports
    /// and its display name. For paper machines the display stays the
    /// canonical machine name; for everything else the explicit `display`
    /// (or the label) wins.
    pub(crate) fn set_identity(&mut self, label: String, display: Option<String>) {
        self.display = match (display, self.id) {
            (Some(d), _) => d,
            (None, MachineId::Custom) => label.clone(),
            (None, id) => id.to_string(),
        };
        self.label = label;
    }

    /// Installs the identity hash of the originating spec, enabling the
    /// probe memo (see [`crate::memo`]).
    pub(crate) fn set_spec_hash(&mut self, hash: u64) {
        self.provenance = Provenance::Spec(hash);
    }

    /// Where this engine's results come from: [`Provenance::Spec`] for
    /// engines built through [`crate::spec::MachineSpec::build`] (which
    /// memoize), [`Provenance::HandBuilt`] otherwise (which bypass).
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// The memo key for a probe about to run, or `None` when memoization
    /// does not apply: hand-built provenance, an enabled recorder
    /// (component counters and events must be recomputed), or the `--cold`
    /// escape hatch ([`gasnub_memsim::cold_path`]).
    fn memo_key(&self, op: ProbeOp, ws_bytes: u64, stride: u64, stride2: u64) -> Option<MemoKey> {
        if self.recorder.enabled() || gasnub_memsim::cold_path() {
            return None;
        }
        Some(MemoKey {
            spec_hash: self.provenance.spec_hash()?,
            op,
            ws_bytes,
            stride,
            stride2,
            max_measure_words: self.limits.max_measure_words,
            max_prime_words: self.limits.max_prime_words,
        })
    }

    /// Whether an enabled recorder is installed, i.e. probe side effects
    /// (counters, events) matter. Tiered wrappers consult this to force
    /// real simulation for observed probes.
    pub fn recorder_enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Access to the underlying SMP system when the backend is bus-based
    /// (for coherence-level tests).
    pub fn smp_system(&self) -> Option<&SnoopingSmp> {
        match &self.backend {
            Backend::Smp(smp) => Some(smp),
            Backend::Node { .. } => None,
        }
    }

    /// Applies a loss model to the backend's network interface (fault
    /// plans); a no-op for backends without one.
    pub(crate) fn set_ni_loss(&mut self, loss: gasnub_interconnect::ni::NiLossModel) {
        if let Backend::Node { remote, .. } = &mut self.backend {
            match remote {
                RemotePath::T3d(path) => path.ni.set_loss_model(Some(loss)),
                RemotePath::T3e(path) => path.eregs.set_loss_model(Some(loss)),
                RemotePath::None => {}
            }
        }
    }

    /// Resets every piece of mutable state: caches, DRAM rows, NI
    /// pipelines, link occupancy. Every probe starts from this state, which
    /// is also the just-constructed state — the invariant that makes a
    /// fresh engine per grid cell bit-identical to a reused one.
    fn flush_all(&mut self) {
        match &mut self.backend {
            Backend::Smp(smp) => smp.flush(),
            Backend::Node { engine, remote } => {
                engine.flush();
                match remote {
                    RemotePath::None => {}
                    RemotePath::T3d(path) => path.reset(),
                    RemotePath::T3e(path) => path.reset(),
                }
            }
        }
    }

    /// The memory engine the measuring processor drives.
    fn mem(&mut self) -> &mut MemoryEngine {
        match &mut self.backend {
            Backend::Smp(smp) => smp.engine_mut(0),
            Backend::Node { engine, .. } => engine,
        }
    }

    /// Gathers every component's counters for the probe that just ran.
    ///
    /// `stats` is the measured pass's [`RunStats`] when the probe produced
    /// one; probes that drive the hierarchy directly (the T3D/T3E remote
    /// inner loops) leave it `None` and the hierarchy's statistics window is
    /// read instead. `pull_provenance` marks the SMP consumer-pull stats,
    /// whose DRAM fields are repurposed as supplier provenance — those are
    /// exported as `smp_*_supplies` counters rather than DRAM traffic.
    fn harvest_counters(&self, stats: Option<&RunStats>, pull_provenance: bool) -> CounterSet {
        let mut out = CounterSet::new();
        match &self.backend {
            Backend::Smp(smp) => {
                if let Some(stats) = stats {
                    if pull_provenance {
                        let mut plain = stats.clone();
                        let total = plain.dram_accesses;
                        let cache = plain.dram_streamed_fills;
                        plain.dram_accesses = 0;
                        plain.dram_row_hits = 0;
                        plain.dram_bank_conflicts = 0;
                        plain.dram_streamed_fills = 0;
                        plain.export_counters(&mut out);
                        out.set("smp_supplies_total", total);
                        out.set("smp_cache_supplies", cache);
                        out.set("smp_home_supplies", total - cache);
                    } else {
                        stats.export_counters(&mut out);
                    }
                }
                smp.export_counters(&mut out);
            }
            Backend::Node { engine, remote } => {
                match stats {
                    Some(stats) => stats.export_counters(&mut out),
                    None => {
                        let mut window = RunStats::default();
                        engine.hierarchy().export_stats(&mut window);
                        window.export_counters(&mut out);
                    }
                }
                match remote {
                    RemotePath::None => {}
                    RemotePath::T3d(path) => {
                        path.ni.export_counters(&mut out);
                        path.link.export_counters(&mut out);
                    }
                    RemotePath::T3e(path) => {
                        path.eregs.export_counters(&mut out);
                        path.link.export_counters(&mut out);
                    }
                }
            }
        }
        out
    }

    /// Observes one finished probe: when the recorder is enabled, harvests
    /// all component counters, stamps the payload/cycle totals, records one
    /// `probe.<op>` event and stores the counter set for
    /// [`Machine::take_counters`]. With the default [`NullRecorder`] this is
    /// a single branch.
    fn observe(
        &mut self,
        op: &'static str,
        ws_bytes: u64,
        stride: u64,
        measurement: &Measurement,
        stats: Option<&RunStats>,
        pull_provenance: bool,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        let mut counters = self.harvest_counters(stats, pull_provenance);
        counters.set("payload_bytes", measurement.bytes);
        counters.set("cycles", measurement.cycles.round() as u64);
        let event = Event::new(format!("probe.{op}"))
            .with("ws_bytes", ws_bytes)
            .with("stride", stride)
            .with_counters(&counters);
        self.recorder.record(event);
        self.last_counters = Some(counters);
    }

    /// Wraps a pass iterator so it consults this engine's cancellation
    /// token (if any) every [`crate::cancel::CHECK_INTERVAL`] accesses.
    fn guard<I: Iterator>(&self, pass: I) -> Guarded<I> {
        Guarded::new(pass, self.cancel.clone())
    }
}

impl Machine for TransferEngine {
    fn id(&self) -> MachineId {
        self.id
    }

    fn name(&self) -> String {
        format!("{} ({} MHz)", self.display, self.clock_mhz)
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    fn limits(&self) -> MeasureLimits {
        self.limits
    }

    fn set_limits(&mut self, limits: MeasureLimits) {
        self.limits = limits;
    }

    fn local_load(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        let key = self.memo_key(ProbeOp::LocalLoad, ws_bytes, stride, 0);
        if let Some(k) = &key {
            if let Some(Some(m)) = memo::lookup(k) {
                return m;
            }
        }
        self.flush_all();
        let (limits, clock) = (self.limits, self.clock_mhz);
        let words = words_of(ws_bytes);
        let prime =
            self.guard(StridedPass::new(0, words, stride).take(limits.prime_words(words) as usize));
        let measured = limits.measure_words(words);
        let measure = self.guard(StridedPass::new(0, words, stride).take(measured as usize));
        let stats = self.mem().prime_and_measure(prime, measure);
        let m = Measurement::new(stats.bytes, stats.cycles, clock);
        self.observe("local_load", ws_bytes, stride, &m, Some(&stats), false);
        if let Some(k) = key {
            memo::insert(k, Some(m));
        }
        m
    }

    fn local_store(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        let key = self.memo_key(ProbeOp::LocalStore, ws_bytes, stride, 0);
        if let Some(k) = &key {
            if let Some(Some(m)) = memo::lookup(k) {
                return m;
            }
        }
        self.flush_all();
        let (limits, clock) = (self.limits, self.clock_mhz);
        let words = words_of(ws_bytes);
        let prime =
            self.guard(StorePass::new(0, words, stride).take(limits.prime_words(words) as usize));
        let measured = limits.measure_words(words);
        let measure = self.guard(StorePass::new(0, words, stride).take(measured as usize));
        let stats = self.mem().prime_and_measure(prime, measure);
        let m = Measurement::new(stats.bytes, stats.cycles, clock);
        self.observe("local_store", ws_bytes, stride, &m, Some(&stats), false);
        if let Some(k) = key {
            memo::insert(k, Some(m));
        }
        m
    }

    fn local_copy(&mut self, ws_bytes: u64, load_stride: u64, store_stride: u64) -> Measurement {
        let key = self.memo_key(ProbeOp::LocalCopy, ws_bytes, load_stride, store_stride);
        if let Some(k) = &key {
            if let Some(Some(m)) = memo::lookup(k) {
                return m;
            }
        }
        self.flush_all();
        let (limits, clock) = (self.limits, self.clock_mhz);
        let words = words_of(ws_bytes);
        let measured = limits.measure_words(words);
        let prime = self.guard(
            CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
                .take(2 * limits.prime_words(words) as usize),
        );
        let measure = self.guard(
            CopyPass::new(0, DST_REGION, words, load_stride, store_stride)
                .take(2 * measured as usize),
        );
        let stats = self.mem().prime_and_measure(prime, measure);
        // Copied payload counts once.
        let m = Measurement::new(measured * WORD_BYTES, stats.cycles, clock);
        self.observe("local_copy", ws_bytes, load_stride, &m, Some(&stats), false);
        if let Some(k) = key {
            memo::insert(k, Some(m));
        }
        m
    }

    fn local_gather(&mut self, ws_bytes: u64) -> Measurement {
        let key = self.memo_key(ProbeOp::LocalGather, ws_bytes, 0, 0);
        if let Some(k) = &key {
            if let Some(Some(m)) = memo::lookup(k) {
                return m;
            }
        }
        self.flush_all();
        let (limits, clock) = (self.limits, self.clock_mhz);
        let words = words_of(ws_bytes);
        let measured = limits.measure_words(words);
        let prime =
            self.guard(StridedPass::new(0, words, 1).take(limits.prime_words(words) as usize));
        let indices =
            gasnub_memsim::trace::shuffled_indices(words, measured as usize, self.gather_seed);
        let measure = self.guard(gasnub_memsim::trace::IndexedPass::new(0, indices));
        let stats = self.mem().prime_and_measure(prime, measure);
        let m = Measurement::new(stats.bytes, stats.cycles, clock);
        self.observe("local_gather", ws_bytes, 0, &m, Some(&stats), false);
        if let Some(k) = key {
            memo::insert(k, Some(m));
        }
        m
    }

    fn remote_load(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        let key = self.memo_key(ProbeOp::RemoteLoad, ws_bytes, stride, 0);
        if let Some(k) = &key {
            if let Some(cached) = memo::lookup(k) {
                return cached;
            }
        }
        let (limits, clock) = (self.limits, self.clock_mhz);
        let cancel = self.cancel.clone();
        let pulled = match &mut self.backend {
            Backend::Smp(smp) => {
                smp.flush();
                let words = words_of(ws_bytes);
                // Producer (P1) writes the data; consumer (P0) pulls after a
                // synchronization point (§5.2).
                let produce = StorePass::new(0, words, 1).take(limits.prime_words(words) as usize);
                let _ = smp.producer_store(1, Guarded::new(produce, cancel.clone()));
                let measured = limits.measure_words(words);
                let pull = StridedPass::new(0, words, stride).take(measured as usize);
                let stats = smp.consumer_pull(0, Guarded::new(pull, cancel));
                let m = Measurement::new(stats.bytes, stats.cycles, clock);
                Some((m, stats))
            }
            // Pure remote loads without a local destination are not one of
            // the paper's torus benchmarks (fig 4 measures shmem_iget
            // transfers).
            Backend::Node { .. } => None,
        };
        let result = pulled.map(|(m, stats)| {
            self.observe("remote_load", ws_bytes, stride, &m, Some(&stats), true);
            m
        });
        if let Some(k) = key {
            memo::insert(k, result);
        }
        result
    }

    fn remote_fetch(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        let key = self.memo_key(ProbeOp::RemoteFetch, ws_bytes, stride, 0);
        if let Some(k) = &key {
            if let Some(cached) = memo::lookup(k) {
                return cached;
            }
        }
        let (limits, clock) = (self.limits, self.clock_mhz);
        let cancel = self.cancel.clone();
        let fetched = match &mut self.backend {
            Backend::Smp(smp) => {
                smp.flush();
                let words = words_of(ws_bytes);
                let produce = StorePass::new(0, words, 1).take(limits.prime_words(words) as usize);
                let _ = smp.producer_store(1, Guarded::new(produce, cancel.clone()));
                let measured = limits.measure_words(words);
                // Strided remote loads, contiguous local stores (fig 12).
                let copy =
                    CopyPass::new(0, DST_REGION, words, stride, 1).take(2 * measured as usize);
                let stats = smp.consumer_pull(0, Guarded::new(copy, cancel));
                let m = Measurement::new(measured * WORD_BYTES, stats.cycles, clock);
                Some((m, Some(stats)))
            }
            Backend::Node { engine, remote } => match remote {
                RemotePath::None => None,
                RemotePath::T3d(path) => Some((
                    path.run_fetch(engine, limits, clock, ws_bytes, stride, cancel),
                    None,
                )),
                RemotePath::T3e(path) => Some((
                    path.run_remote(
                        engine,
                        limits,
                        clock,
                        ws_bytes,
                        stride,
                        Direction::Fetch,
                        cancel,
                    ),
                    None,
                )),
            },
        };
        let result = fetched.map(|(m, stats)| {
            let pull_provenance = stats.is_some();
            self.observe(
                "remote_fetch",
                ws_bytes,
                stride,
                &m,
                stats.as_ref(),
                pull_provenance,
            );
            m
        });
        if let Some(k) = key {
            memo::insert(k, result);
        }
        result
    }

    fn remote_deposit(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        let key = self.memo_key(ProbeOp::RemoteDeposit, ws_bytes, stride, 0);
        if let Some(k) = &key {
            if let Some(cached) = memo::lookup(k) {
                return cached;
            }
        }
        let (limits, clock) = (self.limits, self.clock_mhz);
        let cancel = self.cancel.clone();
        let deposited = match &mut self.backend {
            // "The DEC 8400 does not have support for pushing data into
            // memory or caches of a remote processor." (§5.2)
            Backend::Smp(_) => None,
            Backend::Node { engine, remote } => match remote {
                RemotePath::None => None,
                RemotePath::T3d(path) => {
                    Some(path.run_deposit(engine, limits, clock, ws_bytes, stride, cancel))
                }
                RemotePath::T3e(path) => Some(path.run_remote(
                    engine,
                    limits,
                    clock,
                    ws_bytes,
                    stride,
                    Direction::Deposit,
                    cancel,
                )),
            },
        };
        if let Some(m) = &deposited {
            self.observe("remote_deposit", ws_bytes, stride, m, None, false);
        }
        if let Some(k) = key {
            memo::insert(k, deposited);
        }
        deposited
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = recorder;
        self.last_counters = None;
    }

    fn take_counters(&mut self) -> Option<CounterSet> {
        self.last_counters.take()
    }

    fn drain_events(&mut self) -> Vec<Event> {
        self.recorder.drain()
    }

    fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }
}

impl ProbeBackend for TransferEngine {
    /// Full-simulation backend: every request runs through the per-op
    /// probes (which consult the memo internally under this engine's
    /// [`Provenance`]). The request's tier is ignored — an engine without
    /// an analytic model has only one tier to offer.
    fn probe(&mut self, req: &ProbeRequest) -> Result<ProbeOutcome, SimError> {
        Ok(dispatch(self, req))
    }
}

/// Implements [`Machine`] for a wrapper struct whose `engine` field is a
/// [`TransferEngine`]. The historical machine types (`Dec8400`, `T3d`,
/// `T3e`, `CustomMachine`) are such shells: they keep their calibrated
/// constructors and ablations but own no probe logic of their own.
macro_rules! delegate_machine {
    ($ty:ty) => {
        impl $crate::machine::Machine for $ty {
            fn id(&self) -> $crate::machine::MachineId {
                $crate::machine::Machine::id(&self.engine)
            }

            fn name(&self) -> String {
                $crate::machine::Machine::name(&self.engine)
            }

            fn label(&self) -> String {
                $crate::machine::Machine::label(&self.engine)
            }

            fn clock_mhz(&self) -> f64 {
                $crate::machine::Machine::clock_mhz(&self.engine)
            }

            fn limits(&self) -> $crate::limits::MeasureLimits {
                $crate::machine::Machine::limits(&self.engine)
            }

            fn set_limits(&mut self, limits: $crate::limits::MeasureLimits) {
                $crate::machine::Machine::set_limits(&mut self.engine, limits);
            }

            fn local_load(&mut self, ws_bytes: u64, stride: u64) -> $crate::machine::Measurement {
                $crate::machine::Machine::local_load(&mut self.engine, ws_bytes, stride)
            }

            fn local_store(&mut self, ws_bytes: u64, stride: u64) -> $crate::machine::Measurement {
                $crate::machine::Machine::local_store(&mut self.engine, ws_bytes, stride)
            }

            fn local_copy(
                &mut self,
                ws_bytes: u64,
                load_stride: u64,
                store_stride: u64,
            ) -> $crate::machine::Measurement {
                $crate::machine::Machine::local_copy(
                    &mut self.engine,
                    ws_bytes,
                    load_stride,
                    store_stride,
                )
            }

            fn local_gather(&mut self, ws_bytes: u64) -> $crate::machine::Measurement {
                $crate::machine::Machine::local_gather(&mut self.engine, ws_bytes)
            }

            fn remote_load(
                &mut self,
                ws_bytes: u64,
                stride: u64,
            ) -> Option<$crate::machine::Measurement> {
                $crate::machine::Machine::remote_load(&mut self.engine, ws_bytes, stride)
            }

            fn remote_fetch(
                &mut self,
                ws_bytes: u64,
                stride: u64,
            ) -> Option<$crate::machine::Measurement> {
                $crate::machine::Machine::remote_fetch(&mut self.engine, ws_bytes, stride)
            }

            fn remote_deposit(
                &mut self,
                ws_bytes: u64,
                stride: u64,
            ) -> Option<$crate::machine::Measurement> {
                $crate::machine::Machine::remote_deposit(&mut self.engine, ws_bytes, stride)
            }

            fn set_recorder(&mut self, recorder: Box<dyn gasnub_trace::Recorder>) {
                $crate::machine::Machine::set_recorder(&mut self.engine, recorder);
            }

            fn take_counters(&mut self) -> Option<gasnub_trace::CounterSet> {
                $crate::machine::Machine::take_counters(&mut self.engine)
            }

            fn drain_events(&mut self) -> Vec<gasnub_trace::Event> {
                $crate::machine::Machine::drain_events(&mut self.engine)
            }

            fn set_cancel_token(&mut self, token: $crate::cancel::CancelToken) {
                $crate::machine::Machine::set_cancel_token(&mut self.engine, token);
            }
        }
    };
}
pub(crate) use delegate_machine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    /// Parallel sweeps move engines across threads; the backends must stay
    /// plain data.
    #[test]
    fn transfer_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TransferEngine>();
    }

    #[test]
    fn words_of_rounds_up_to_one() {
        assert_eq!(words_of(0), 1);
        assert_eq!(words_of(7), 1);
        assert_eq!(words_of(8), 1);
        assert_eq!(words_of(64), 8);
    }

    #[test]
    fn smp_accessor_only_on_bus_backends() {
        let dec = MachineSpec::dec8400().build().unwrap();
        assert!(dec.smp_system().is_some());
        let t3d = MachineSpec::t3d().build().unwrap();
        assert!(t3d.smp_system().is_none());
    }

    /// Without a recorder, probes leave no counters behind; with a
    /// `RingRecorder` installed, each probe harvests counters and records
    /// one event, and the observation does not change the measurement.
    #[test]
    fn recorder_harvests_counters_without_changing_measurements() {
        use gasnub_trace::RingRecorder;

        let mut quiet = MachineSpec::t3d().build().unwrap();
        quiet.set_limits(MeasureLimits::fast());
        let baseline = quiet.local_load(64 << 10, 8);
        assert!(quiet.take_counters().is_none());
        assert!(quiet.drain_events().is_empty());

        let mut observed = MachineSpec::t3d().build().unwrap();
        observed.set_limits(MeasureLimits::fast());
        observed.set_recorder(Box::new(RingRecorder::new(16)));
        let measured = observed.local_load(64 << 10, 8);
        assert_eq!(measured.bytes, baseline.bytes);
        assert_eq!(measured.cycles, baseline.cycles);

        let counters = observed.take_counters().expect("harvested counters");
        assert_eq!(counters.get("payload_bytes"), measured.bytes);
        assert!(counters.get("accesses") > 0);
        let events = observed.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "probe.local_load");
        assert_eq!(events[0].field("stride"), Some(8));

        let deposit = observed
            .remote_deposit(64 << 10, 8)
            .expect("t3d deposits remotely");
        let counters = observed.take_counters().expect("remote counters");
        assert_eq!(counters.get("payload_bytes"), deposit.bytes);
        assert!(counters.get("ni_packets") > 0);
        assert!(counters.get("link_transfers") > 0);
    }

    /// Repeated cells hit the per-process memo instead of re-simulating,
    /// and memoized results are bit-identical to computed ones. Observed
    /// engines (enabled recorder) bypass the memo entirely so counters and
    /// events stay faithful.
    #[test]
    fn repeated_probes_hit_the_memo_with_identical_results() {
        use crate::memo;
        let _guard = memo::TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());

        let mut engine = MachineSpec::t3e()
            .with_limits(MeasureLimits::fast())
            .build()
            .unwrap();
        let first = engine.local_load(48 << 10, 3);
        let (hits0, _) = memo::stats();
        let second = engine.local_load(48 << 10, 3);
        let (hits1, _) = memo::stats();
        assert_eq!(first.cycles.to_bits(), second.cycles.to_bits());
        assert!(hits1 > hits0, "second probe must be served by the memo");

        // Unsupported outcomes memoize too (pure remote loads on a torus).
        assert!(engine.remote_load(48 << 10, 3).is_none());
        assert!(engine.remote_load(48 << 10, 3).is_none());

        // An enabled recorder turns memoization off: the probe recomputes
        // and harvests real counters.
        engine.set_recorder(Box::new(gasnub_trace::RingRecorder::new(4)));
        let observed = engine.local_load(48 << 10, 3);
        assert_eq!(observed.cycles.to_bits(), first.cycles.to_bits());
        assert!(engine.take_counters().is_some());
    }
}
