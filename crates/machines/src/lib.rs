#![warn(missing_docs)]

//! # gasnub-machines
//!
//! Machine models of the three parallel systems characterized by Stricker &
//! Gross (HPCA-3, 1997), assembled from the `gasnub-memsim`,
//! `gasnub-interconnect` and `gasnub-coherence` substrates with the paper's
//! §3 parameters:
//!
//! * [`dec8400::Dec8400`] — 300 MHz 21164 (EV-5), three cache levels
//!   (8 KB L1 / 96 KB L2 / 4 MB L3), interleaved DRAM, 256-bit 75 MHz
//!   coherent bus; remote transfers are coherent consumer *pulls*.
//! * [`t3d::T3d`] — 150 MHz 21064 (EV-4), 8 KB L1 only, external read-ahead
//!   logic and coalescing write-back queue, 3D torus with fetch/deposit
//!   circuitry; deposit ≫ naive fetch.
//! * [`t3e::T3e`] — 300 MHz 21164, L1/L2 on chip, six stream buffers, no L3,
//!   512 E-registers; fetch ≈ deposit at 4x the T3D's remote bandwidth.
//!
//! Each machine also exposes a `with_faults` constructor taking a
//! [`FaultPlan`] (from `gasnub-faults`), which re-parameterizes the remote
//! paths for a deterministically degraded installation — failed/degraded
//! torus channels, lossy network interfaces, a jittery bus arbiter.
//!
//! The machine layer is split into an immutable description and a mutable
//! runtime: a [`spec::MachineSpec`] holds clock, hierarchy, NI/topology and
//! fault-plan parameters and is freely `Clone + Send + Sync`; its `build()`
//! produces a fresh [`engine::TransferEngine`] owning all mutable
//! simulation state and implementing every probe exactly once. The four
//! named machine types are thin shells over a `TransferEngine`, and the
//! [`spec::SpawnEngine`] factory trait lets the sweep layer hand each grid
//! cell its own engine for parallel execution.
//!
//! Every machine implements the [`machine::Machine`] trait: the probe
//! surface the characterization layer (`gasnub-core`) sweeps. Absolute
//! cycle parameters are calibrated against the ~30 bandwidth figures quoted
//! in the paper's prose; [`calibration`] holds that table and the test
//! suite asserts it (see `EXPERIMENTS.md` for paper-vs-measured).
//!
//! ## Example
//!
//! ```rust
//! use gasnub_machines::{Machine, MeasureLimits, T3d};
//!
//! let mut t3d = T3d::new();
//! t3d.set_limits(MeasureLimits::fast());
//! // The read-ahead logic makes contiguous DRAM loads far faster than
//! // strided ones (fig 3).
//! let contiguous = t3d.local_load(8 << 20, 1).mb_s;
//! let strided = t3d.local_load(8 << 20, 16).mb_s;
//! assert!(contiguous > 3.0 * strided);
//! ```

pub mod calibration;
pub mod cancel;
pub mod custom;
pub mod dec8400;
pub mod engine;
pub mod limits;
pub mod machine;
pub mod memo;
pub mod params;
pub mod probe;
pub mod registry;
pub mod spec;
pub mod specfile;
pub mod t3d;
pub mod t3e;
pub mod warm;

pub use cancel::{CancelToken, CellCancelled};
pub use custom::{CustomMachine, CustomMachineBuilder};
pub use dec8400::Dec8400;
pub use engine::{words_of, TransferEngine};
pub use gasnub_faults::{FaultPlan, RouteImpact};
pub use gasnub_trace::{CounterSet, Event, NullRecorder, Recorder, RingRecorder};
pub use limits::MeasureLimits;
pub use machine::{Machine, MachineId, Measurement};
pub use probe::{
    dispatch, Memoized, ProbeBackend, ProbeOp, ProbeOutcome, ProbePath, ProbeRequest, ProbeTier,
    Provenance, WarmBackend,
};
pub use registry::{BrokenSpec, MachineRegistry, ResolveError};
pub use spec::{MachineSpec, SpawnEngine};
pub use specfile::SpecError;
pub use t3d::T3d;
pub use t3e::T3e;
pub use warm::WarmState;

/// Builds all three machines with paper parameters and default limits.
pub fn all_machines() -> Vec<Box<dyn Machine>> {
    vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ]
}
