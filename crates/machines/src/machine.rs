//! The common probe surface of a characterized machine.

use gasnub_trace::{CounterSet, Event, Recorder};

use crate::cancel::CancelToken;
use crate::limits::MeasureLimits;

/// Which of the paper's three systems a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// DEC AlphaServer 8400 (bus-based cache-coherent SMP).
    Dec8400,
    /// Cray T3D (150 MHz EV-4 PEs on a 3D torus).
    CrayT3d,
    /// Cray T3E (300 MHz EV-5 PEs, E-registers, stream buffers).
    CrayT3e,
    /// A user-defined machine (see [`crate::custom::CustomMachine`]).
    Custom,
}

impl MachineId {
    /// Short ASCII label used in tables and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            MachineId::Dec8400 => "dec8400",
            MachineId::CrayT3d => "t3d",
            MachineId::CrayT3e => "t3e",
            MachineId::Custom => "custom",
        }
    }

    /// Parses a label (as produced by [`MachineId::label`]) or a common
    /// alias back into an id. Returns `None` for unknown names.
    pub fn from_label(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dec8400" | "8400" | "alphaserver" => Some(MachineId::Dec8400),
            "t3d" | "crayt3d" | "cray-t3d" => Some(MachineId::CrayT3d),
            "t3e" | "crayt3e" | "cray-t3e" => Some(MachineId::CrayT3e),
            "custom" => Some(MachineId::Custom),
            _ => None,
        }
    }
}

impl std::str::FromStr for MachineId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MachineId::from_label(s).ok_or_else(|| format!("unknown machine '{s}'"))
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MachineId::Dec8400 => "DEC 8400",
            MachineId::CrayT3d => "Cray T3D",
            MachineId::CrayT3e => "Cray T3E",
            MachineId::Custom => "custom machine",
        };
        f.write_str(name)
    }
}

/// One benchmark result: payload moved, simulated cycles, and the bandwidth
/// those imply at the machine's clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Payload bytes (copied words are counted once).
    pub bytes: u64,
    /// Simulated CPU cycles of the measured pass.
    pub cycles: f64,
    /// `bytes * clock_mhz / cycles`, in MB/s.
    pub mb_s: f64,
}

impl Measurement {
    /// Builds a measurement, computing the bandwidth from the clock.
    pub fn new(bytes: u64, cycles: f64, clock_mhz: f64) -> Self {
        let mb_s = if cycles > 0.0 {
            bytes as f64 * clock_mhz / cycles
        } else {
            0.0
        };
        Measurement {
            bytes,
            cycles,
            mb_s,
        }
    }
}

/// A machine that can run the paper's micro-benchmarks.
///
/// All working sets are in bytes, all strides in 64-bit words, matching the
/// paper's axes. Each probe starts from a cold machine (implementations
/// flush first), primes the hierarchy with one pass over the working set,
/// and measures a second pass — the paper's §5 methodology.
pub trait Machine {
    /// Which system this is.
    fn id(&self) -> MachineId;

    /// Human-readable name (includes the clock).
    fn name(&self) -> String {
        format!("{} ({} MHz)", self.id(), self.clock_mhz())
    }

    /// Short registry label used in tables, CSV and report output. For
    /// spec-defined machines this is the spec's `name` field; the default
    /// falls back to the model-family id's label.
    fn label(&self) -> String {
        self.id().label().to_string()
    }

    /// Processor clock in MHz.
    fn clock_mhz(&self) -> f64;

    /// Current measurement caps.
    fn limits(&self) -> MeasureLimits;

    /// Replaces the measurement caps (tests use [`MeasureLimits::fast`]).
    fn set_limits(&mut self, limits: MeasureLimits);

    /// Local Load-Sum: strided loads over a primed working set (figs 1/3/6).
    fn local_load(&mut self, ws_bytes: u64, stride: u64) -> Measurement;

    /// Local Store-Constant: strided stores over a working set (§4.2's third
    /// benchmark, reported in the text only).
    fn local_store(&mut self, ws_bytes: u64, stride: u64) -> Measurement;

    /// Local memory copy with one strided side (figs 9-11). Payload counts
    /// the copied words once.
    fn local_copy(&mut self, ws_bytes: u64, load_stride: u64, store_stride: u64) -> Measurement;

    /// Local indexed (gather) loads: the working set visited in a
    /// deterministic pseudo-random permutation — the paper's third access
    /// pattern class ("contiguous, strided, and indexed accesses", §4),
    /// the pattern of sparse-matrix codes. Neither read-ahead logic nor
    /// stream buffers can help here.
    fn local_gather(&mut self, ws_bytes: u64) -> Measurement;

    /// Pure remote loads (fig 2's pull on the 8400). `None` when the machine
    /// has no such mode.
    fn remote_load(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement>;

    /// Fetch transfer: strided remote loads + contiguous local stores
    /// (figs 4/7, and the fetch series of figs 12-14).
    fn remote_fetch(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement>;

    /// Deposit transfer: contiguous local loads + strided remote stores
    /// (figs 5/8, and the deposit series of figs 13-14). `None` on the
    /// DEC 8400, which "does not have support for pushing data into memory
    /// or caches of a remote processor" (§5.2).
    fn remote_deposit(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement>;

    /// Installs an event recorder. While the recorder is enabled, every
    /// probe harvests its component counters and records one `probe.*`
    /// event; the default [`gasnub_trace::NullRecorder`] keeps the probes on
    /// their unobserved fast path. The default implementation ignores the
    /// recorder (for machines without instrumentation).
    fn set_recorder(&mut self, _recorder: Box<dyn Recorder>) {}

    /// Takes the counter set harvested by the most recent probe, if any.
    /// Returns `None` when no enabled recorder observed a probe.
    fn take_counters(&mut self) -> Option<CounterSet> {
        None
    }

    /// Drains all events buffered by the installed recorder.
    fn drain_events(&mut self) -> Vec<Event> {
        Vec::new()
    }

    /// Installs a cooperative cancellation token. Instrumented machines
    /// ([`crate::engine::TransferEngine`]) consult it periodically inside
    /// their probe loops and unwind with
    /// [`crate::cancel::CellCancelled`] once it is cancelled — the hook the
    /// resilient sweep runner uses to enforce per-cell wall-clock budgets.
    /// The default implementation ignores the token (such machines simply
    /// cannot be interrupted mid-probe).
    fn set_cancel_token(&mut self, _token: CancelToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_bandwidth_formula() {
        let m = Measurement::new(8, 2.0, 300.0);
        assert!((m.mb_s - 1200.0).abs() < 1e-9);
        let empty = Measurement::new(8, 0.0, 300.0);
        assert_eq!(empty.mb_s, 0.0);
    }

    #[test]
    fn machine_labels() {
        assert_eq!(MachineId::Dec8400.label(), "dec8400");
        assert_eq!(MachineId::CrayT3d.to_string(), "Cray T3D");
    }
}
