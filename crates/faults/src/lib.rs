#![warn(missing_docs)]

//! # gasnub-faults
//!
//! Deterministic fault-injection plans for the GASNUB machine models.
//!
//! The paper characterizes the *healthy* memory systems of the DEC 8400 and
//! the Cray T3D/T3E. Real installations degrade: torus links fail or train
//! down to a fraction of their capacity, network interfaces drop packets and
//! pay retry timeouts, and a shared bus picks up arbitration noise from
//! agents outside the model. A [`FaultPlan`] bundles all three effects
//! behind a single `(seed, severity)` pair and derives, reproducibly:
//!
//! * [`FaultPlan::channel_faults_for`] — failed and degraded directed
//!   channels of a [`Torus3d`], consumed by
//!   `Torus3d::route_avoiding` and `netsim::simulate_with_faults`;
//! * [`FaultPlan::ni_loss`] — a [`NiLossConfig`] message-loss model for the
//!   T3D fetch/deposit circuitry and the T3E E-registers;
//! * [`FaultPlan::bus_jitter`] — a [`BusJitterConfig`] arbitration-stall
//!   model for the 8400 system bus;
//! * [`FaultPlan::remote_impact`] — the hop-count and capacity impact of
//!   the channel faults on a representative nearest-neighbour route, used
//!   by the machine models' scalar link paths.
//!
//! Everything is a pure function of the plan: two plans built from the same
//! seed and severity produce byte-identical fault sets and, downstream,
//! identical cycle counts.

use gasnub_interconnect::bus::BusJitterConfig;
use gasnub_interconnect::ni::NiLossConfig;
use gasnub_interconnect::topology::{ChannelFaults, NodeId, Torus3d};
use gasnub_memsim::rng::Rng;
use gasnub_memsim::{ConfigError, SimError};
use gasnub_trace::CounterSet;

/// Stream tags separating the per-subsystem random streams derived from one
/// plan seed (mixed through splitmix64, so related seeds stay uncorrelated).
const STREAM_CHANNELS: u64 = 0xC4A7;
const STREAM_NI: u64 = 0x17FA;
const STREAM_BUS: u64 = 0xB05;

/// Probability scale of a *failed* directed channel at severity 1.
const FAIL_SCALE: f64 = 0.06;
/// Probability scale of a *degraded* directed channel at severity 1.
const DEGRADE_SCALE: f64 = 0.25;
/// Per-attempt message-loss probability at severity 1.
const LOSS_SCALE: f64 = 0.10;
/// Bus arbitration jitter amplitude at severity 1, in bus cycles.
const JITTER_SCALE_BUS_CYCLES: f64 = 6.0;
/// Floor on a degraded channel's capacity factor.
const MIN_CAPACITY: f64 = 0.05;

/// The canonical fabric the machine models degrade against: the paper's
/// full-size 8 x 8 x 8 torus of 512 PEs.
///
/// # Panics
///
/// Never — the dimensions are a compile-time constant that validates.
pub fn canonical_torus() -> Torus3d {
    Torus3d::new([8, 8, 8]).expect("the canonical 8x8x8 torus always validates")
}

/// The representative remote pair for the scalar machine paths: a
/// nearest-neighbour transfer, matching the `hops: 1` of the healthy
/// T3D/T3E remote parameter tables.
pub fn canonical_pair() -> (NodeId, NodeId) {
    (NodeId(0), NodeId(1))
}

/// Impact of a plan's channel faults on one route, expressed in the terms
/// the machine models' scalar link paths understand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteImpact {
    /// Hops of the healthy dimension-order route.
    pub healthy_hops: u32,
    /// Hops of the fault-avoiding route (≥ `healthy_hops`).
    pub hops: u32,
    /// Smallest capacity factor along the fault-avoiding route, in
    /// `(0, 1]`; the route's bottleneck channel.
    pub min_capacity_factor: f64,
}

impl RouteImpact {
    /// Factor by which per-byte link occupancy grows: the bottleneck
    /// channel paces the whole pipelined transfer.
    pub fn per_byte_scale(&self) -> f64 {
        1.0 / self.min_capacity_factor
    }

    /// Exports the route's shape into `out`: healthy and actual hop counts,
    /// the detour hops forced by faults, and the bottleneck capacity in
    /// parts per million (so the counter domain stays integral).
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("route_healthy_hops", u64::from(self.healthy_hops));
        out.add("route_hops", u64::from(self.hops));
        out.add(
            "route_detour_hops",
            u64::from(self.hops.saturating_sub(self.healthy_hops)),
        );
        out.set(
            "route_capacity_ppm",
            (self.min_capacity_factor * 1_000_000.0).round() as u64,
        );
    }
}

/// A seedable, fully deterministic fault-injection plan.
///
/// `severity` in `[0, 1]` scales every effect; severity 0 is a healthy
/// machine (empty channel faults, zero loss probability, zero jitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    severity: f64,
}

impl FaultPlan {
    /// Builds a plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `severity` is in `[0, 1]`.
    pub fn new(seed: u64, severity: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(ConfigError::new("fault plan", "severity must be in [0, 1]"));
        }
        Ok(FaultPlan { seed, severity })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's severity.
    pub fn severity(&self) -> f64 {
        self.severity
    }

    /// Seed of one subsystem's derived random stream.
    fn stream_seed(&self, tag: u64) -> u64 {
        Rng::new(self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// Derives the failed/degraded directed channels of `torus`.
    ///
    /// Each directed channel's fate is a pure function of the plan seed and
    /// the channel's endpoints, so the result does not depend on iteration
    /// order and is stable across calls.
    pub fn channel_faults_for(&self, torus: &Torus3d) -> ChannelFaults {
        let mut faults = ChannelFaults::none();
        if self.severity == 0.0 {
            return faults;
        }
        let base = self.stream_seed(STREAM_CHANNELS);
        let fail_p = FAIL_SCALE * self.severity;
        let degrade_p = DEGRADE_SCALE * self.severity;
        for node in 0..torus.nodes() {
            let from = NodeId(node);
            for to in torus.neighbors(from) {
                let key = (u64::from(from.0) << 32) | u64::from(to.0);
                let mut rng = Rng::new(base ^ key);
                let roll = rng.gen_f64();
                if roll < fail_p {
                    faults.fail_channel(from, to);
                } else if roll < fail_p + degrade_p {
                    let factor =
                        (1.0 - self.severity * (0.2 + 0.6 * rng.gen_f64())).max(MIN_CAPACITY);
                    faults
                        .degrade_channel(from, to, factor)
                        .expect("derived capacity factor is always in (0, 1]");
                }
            }
        }
        faults
    }

    /// The plan's network-interface message-loss model.
    pub fn ni_loss(&self) -> NiLossConfig {
        NiLossConfig {
            loss_probability: LOSS_SCALE * self.severity,
            timeout_cycles: 250.0,
            backoff_multiplier: 2.0,
            max_retries: 6,
            seed: self.stream_seed(STREAM_NI),
        }
    }

    /// The plan's bus arbitration-jitter model.
    pub fn bus_jitter(&self) -> BusJitterConfig {
        BusJitterConfig {
            amplitude_bus_cycles: JITTER_SCALE_BUS_CYCLES * self.severity,
            seed: self.stream_seed(STREAM_BUS),
        }
    }

    /// Assesses how the plan's channel faults reshape the route
    /// `from -> to` on `torus`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when an endpoint is out of range or the faults
    /// disconnect the pair entirely.
    pub fn assess_route(
        &self,
        torus: &Torus3d,
        from: NodeId,
        to: NodeId,
    ) -> Result<RouteImpact, SimError> {
        let faults = self.channel_faults_for(torus);
        let path = torus.route_avoiding(from, to, &faults)?;
        let min_capacity_factor = path
            .iter()
            .map(|&(a, b)| faults.capacity_factor(a, b))
            .fold(1.0_f64, f64::min);
        Ok(RouteImpact {
            healthy_hops: torus.hops(from, to),
            hops: path.len() as u32,
            min_capacity_factor,
        })
    }

    /// [`Self::assess_route`] on the canonical torus and remote pair — the
    /// single number pair the scalar machine models consume.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the faults disconnect the canonical pair.
    pub fn remote_impact(&self) -> Result<RouteImpact, SimError> {
        let (from, to) = canonical_pair();
        self.assess_route(&canonical_torus(), from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_validated() {
        assert!(FaultPlan::new(1, 0.0).is_ok());
        assert!(FaultPlan::new(1, 1.0).is_ok());
        assert!(FaultPlan::new(1, -0.1).is_err());
        assert!(FaultPlan::new(1, 1.1).is_err());
        assert!(FaultPlan::new(1, f64::NAN).is_err());
    }

    #[test]
    fn zero_severity_is_a_healthy_machine() {
        let plan = FaultPlan::new(99, 0.0).unwrap();
        assert!(plan.channel_faults_for(&canonical_torus()).is_empty());
        assert_eq!(plan.ni_loss().loss_probability, 0.0);
        assert_eq!(plan.bus_jitter().amplitude_bus_cycles, 0.0);
        let impact = plan.remote_impact().unwrap();
        assert_eq!(impact.hops, impact.healthy_hops);
        assert_eq!(impact.min_capacity_factor, 1.0);
    }

    #[test]
    fn same_plan_derives_identical_faults() {
        let torus = canonical_torus();
        let a = FaultPlan::new(42, 0.5).unwrap();
        let b = FaultPlan::new(42, 0.5).unwrap();
        let fa = a.channel_faults_for(&torus);
        let fb = b.channel_faults_for(&torus);
        assert_eq!(
            fa.failed_channels().collect::<Vec<_>>(),
            fb.failed_channels().collect::<Vec<_>>()
        );
        let da: Vec<_> = fa.degraded_channels().collect();
        let db: Vec<_> = fb.degraded_channels().collect();
        assert_eq!(da, db);
        assert_eq!(a.ni_loss(), b.ni_loss());
        assert_eq!(a.bus_jitter(), b.bus_jitter());
        assert_eq!(a.remote_impact().unwrap(), b.remote_impact().unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let torus = canonical_torus();
        let a = FaultPlan::new(1, 0.8).unwrap().channel_faults_for(&torus);
        let b = FaultPlan::new(2, 0.8).unwrap().channel_faults_for(&torus);
        assert_ne!(
            a.failed_channels().collect::<Vec<_>>(),
            b.failed_channels().collect::<Vec<_>>()
        );
    }

    #[test]
    fn severity_scales_fault_counts() {
        let torus = canonical_torus();
        let mild = FaultPlan::new(7, 0.1).unwrap().channel_faults_for(&torus);
        let harsh = FaultPlan::new(7, 0.9).unwrap().channel_faults_for(&torus);
        assert!(harsh.failed_count() > mild.failed_count());
        assert!(
            harsh.failed_count() + harsh.degraded_count()
                > mild.failed_count() + mild.degraded_count()
        );
    }

    #[test]
    fn derived_configs_validate() {
        for s in [0.0, 0.3, 1.0] {
            let plan = FaultPlan::new(13, s).unwrap();
            assert!(plan.ni_loss().validate().is_ok(), "severity {s}");
            assert!(plan.bus_jitter().validate().is_ok(), "severity {s}");
        }
    }

    #[test]
    fn route_impact_never_improves_on_healthy() {
        for seed in 0..32 {
            let plan = FaultPlan::new(seed, 0.7).unwrap();
            if let Ok(impact) = plan.remote_impact() {
                assert!(impact.hops >= impact.healthy_hops, "seed {seed}");
                assert!(impact.min_capacity_factor > 0.0 && impact.min_capacity_factor <= 1.0);
                assert!(impact.per_byte_scale() >= 1.0);
            }
        }
    }

    #[test]
    fn route_impact_exports_counters() {
        let healthy = RouteImpact {
            healthy_hops: 1,
            hops: 3,
            min_capacity_factor: 0.5,
        };
        let mut out = CounterSet::new();
        healthy.export_counters(&mut out);
        assert_eq!(out.get("route_healthy_hops"), 1);
        assert_eq!(out.get("route_hops"), 3);
        assert_eq!(out.get("route_detour_hops"), 2);
        assert_eq!(out.get("route_capacity_ppm"), 500_000);
    }

    #[test]
    fn subsystem_streams_are_decorrelated() {
        let plan = FaultPlan::new(5, 0.5).unwrap();
        assert_ne!(plan.ni_loss().seed, plan.bus_jitter().seed);
    }
}
